#include "serve/protocol.h"

#include <cmath>

#include "common/string_util.h"
#include "serve/json.h"

namespace leapme::serve {

namespace {

Status FieldError(const char* field, const char* problem) {
  return Status::InvalidArgument(StrFormat("field '%s': %s", field, problem));
}

/// Rejects members outside `allowed` so client typos surface as errors
/// instead of being silently ignored.
Status CheckKnownKeys(const JsonValue& object,
                      const std::vector<std::string_view>& allowed) {
  for (const std::string& key : object.ObjectKeys()) {
    bool known = false;
    for (std::string_view candidate : allowed) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("unknown field '" + key + "'");
    }
  }
  return Status::OK();
}

StatusOr<PropertySpec> ParsePropertySpec(const JsonValue& value,
                                         const char* field,
                                         const ProtocolLimits& limits) {
  if (!value.is_object()) {
    return FieldError(field, "must be an object {name, values}");
  }
  LEAPME_RETURN_IF_ERROR(CheckKnownKeys(value, {"name", "values"}));
  PropertySpec spec;
  const JsonValue* name = value.Find("name");
  if (name == nullptr || !name->is_string()) {
    return FieldError(field, "requires a string 'name'");
  }
  spec.name = name->AsString();
  if (spec.name.empty()) {
    return FieldError(field, "'name' must be non-empty");
  }
  const JsonValue* values = value.Find("values");
  if (values != nullptr) {
    if (!values->is_array()) {
      return FieldError(field, "'values' must be an array of strings");
    }
    if (values->AsArray().size() > limits.max_values_per_property) {
      return FieldError(field, "too many instance values");
    }
    spec.values.reserve(values->AsArray().size());
    for (const JsonValue& element : values->AsArray()) {
      if (!element.is_string()) {
        return FieldError(field, "'values' must contain only strings");
      }
      spec.values.push_back(element.AsString());
    }
  }
  return spec;
}

StatusOr<std::optional<int64_t>> ParseId(const JsonValue& root) {
  const JsonValue* id = root.Find("id");
  if (id == nullptr) {
    return std::optional<int64_t>();
  }
  if (!id->is_number() || id->AsNumber() != std::floor(id->AsNumber()) ||
      std::abs(id->AsNumber()) > 9.0e15) {
    return FieldError("id", "must be an integer");
  }
  return std::optional<int64_t>(static_cast<int64_t>(id->AsNumber()));
}

void AppendIdPrefix(std::string* out, const std::optional<int64_t>& id) {
  out->push_back('{');
  if (id.has_value()) {
    out->append(StrFormat("\"id\":%lld,",
                          static_cast<long long>(*id)));
  }
}

}  // namespace

StatusOr<Request> ParseRequest(std::string_view line,
                               const ProtocolLimits& limits) {
  LEAPME_ASSIGN_OR_RETURN(JsonValue root, JsonValue::Parse(line));
  if (!root.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  Request request;
  LEAPME_ASSIGN_OR_RETURN(request.id, ParseId(root));

  const JsonValue* op = root.Find("op");
  if (op == nullptr || !op->is_string()) {
    return FieldError("op", "is required and must be a string");
  }
  const std::string& op_name = op->AsString();
  if (op_name == "ping") {
    request.op = Op::kPing;
    LEAPME_RETURN_IF_ERROR(CheckKnownKeys(root, {"op", "id"}));
    return request;
  }
  if (op_name == "stats") {
    request.op = Op::kStats;
    LEAPME_RETURN_IF_ERROR(CheckKnownKeys(root, {"op", "id"}));
    return request;
  }
  if (op_name == "health") {
    request.op = Op::kHealth;
    LEAPME_RETURN_IF_ERROR(CheckKnownKeys(root, {"op", "id"}));
    return request;
  }
  if (op_name == "ready") {
    request.op = Op::kReady;
    LEAPME_RETURN_IF_ERROR(CheckKnownKeys(root, {"op", "id"}));
    return request;
  }
  if (op_name == "reload") {
    request.op = Op::kReload;
    LEAPME_RETURN_IF_ERROR(CheckKnownKeys(root, {"op", "id", "model"}));
    const JsonValue* model = root.Find("model");
    if (model != nullptr) {
      if (!model->is_string()) {
        return FieldError("model", "must be a string path");
      }
      request.model_path = model->AsString();
      if (request.model_path.empty()) {
        return FieldError("model", "must be non-empty when given");
      }
    }
    return request;
  }
  if (op_name == "score") {
    request.op = Op::kScore;
    LEAPME_RETURN_IF_ERROR(CheckKnownKeys(root, {"op", "id", "pairs"}));
    const JsonValue* pairs = root.Find("pairs");
    if (pairs == nullptr || !pairs->is_array()) {
      return FieldError("pairs", "is required and must be an array");
    }
    if (pairs->AsArray().empty()) {
      return FieldError("pairs", "must be non-empty");
    }
    if (pairs->AsArray().size() > limits.max_pairs_per_request) {
      return FieldError("pairs", "exceeds the per-request pair limit");
    }
    request.pairs.reserve(pairs->AsArray().size());
    for (const JsonValue& element : pairs->AsArray()) {
      if (!element.is_object()) {
        return FieldError("pairs", "elements must be objects {a, b}");
      }
      LEAPME_RETURN_IF_ERROR(CheckKnownKeys(element, {"a", "b"}));
      const JsonValue* a = element.Find("a");
      const JsonValue* b = element.Find("b");
      if (a == nullptr || b == nullptr) {
        return FieldError("pairs", "elements require both 'a' and 'b'");
      }
      PropertyPairSpec pair;
      LEAPME_ASSIGN_OR_RETURN(pair.a, ParsePropertySpec(*a, "a", limits));
      LEAPME_ASSIGN_OR_RETURN(pair.b, ParsePropertySpec(*b, "b", limits));
      request.pairs.push_back(std::move(pair));
    }
    return request;
  }
  if (op_name == "topk") {
    request.op = Op::kTopK;
    LEAPME_RETURN_IF_ERROR(
        CheckKnownKeys(root, {"op", "id", "query", "candidates", "k"}));
    const JsonValue* query = root.Find("query");
    if (query == nullptr) {
      return FieldError("query", "is required");
    }
    LEAPME_ASSIGN_OR_RETURN(request.query,
                            ParsePropertySpec(*query, "query", limits));
    const JsonValue* candidates = root.Find("candidates");
    if (candidates == nullptr || !candidates->is_array()) {
      return FieldError("candidates", "is required and must be an array");
    }
    if (candidates->AsArray().empty()) {
      return FieldError("candidates", "must be non-empty");
    }
    if (candidates->AsArray().size() > limits.max_candidates_per_request) {
      return FieldError("candidates", "exceeds the per-request limit");
    }
    request.candidates.reserve(candidates->AsArray().size());
    for (const JsonValue& element : candidates->AsArray()) {
      LEAPME_ASSIGN_OR_RETURN(
          PropertySpec spec,
          ParsePropertySpec(element, "candidates", limits));
      request.candidates.push_back(std::move(spec));
    }
    const JsonValue* k = root.Find("k");
    if (k != nullptr) {
      if (!k->is_number() || k->AsNumber() != std::floor(k->AsNumber()) ||
          k->AsNumber() < 1.0 ||
          k->AsNumber() > static_cast<double>(limits.max_k)) {
        return FieldError("k", "must be a positive integer within limits");
      }
      request.k = static_cast<size_t>(k->AsNumber());
    }
    return request;
  }
  if (op_name == "index_match") {
    request.op = Op::kIndexMatch;
    request.k = 5;
    LEAPME_RETURN_IF_ERROR(
        CheckKnownKeys(root, {"op", "id", "property", "k"}));
    const JsonValue* property = root.Find("property");
    if (property == nullptr) {
      return FieldError("property", "is required");
    }
    LEAPME_ASSIGN_OR_RETURN(request.query,
                            ParsePropertySpec(*property, "property", limits));
    const JsonValue* k = root.Find("k");
    if (k != nullptr) {
      if (!k->is_number() || k->AsNumber() != std::floor(k->AsNumber()) ||
          k->AsNumber() < 1.0 ||
          k->AsNumber() > static_cast<double>(limits.max_k)) {
        return FieldError("k", "must be a positive integer within limits");
      }
      request.k = static_cast<size_t>(k->AsNumber());
    }
    return request;
  }
  return Status::InvalidArgument(
      "unknown op '" + op_name +
      "' (ping|score|topk|index_match|stats|health|ready|reload)");
}

std::string PingResponse(const std::optional<int64_t>& id) {
  std::string out;
  AppendIdPrefix(&out, id);
  out.append("\"ok\":true,\"op\":\"ping\"}");
  return out;
}

std::string ScoreResponse(const std::optional<int64_t>& id,
                          const std::vector<double>& scores, bool degraded) {
  std::string out;
  AppendIdPrefix(&out, id);
  out.append("\"ok\":true,\"op\":\"score\",");
  if (degraded) {
    out.append("\"degraded\":true,");
  }
  out.append("\"scores\":[");
  for (size_t i = 0; i < scores.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(FormatJsonDouble(scores[i]));
  }
  out.append("]}");
  return out;
}

std::string TopKResponse(const std::optional<int64_t>& id,
                         const std::vector<MatchResult>& matches,
                         bool degraded) {
  std::string out;
  AppendIdPrefix(&out, id);
  out.append("\"ok\":true,\"op\":\"topk\",");
  if (degraded) {
    out.append("\"degraded\":true,");
  }
  out.append("\"matches\":[");
  for (size_t i = 0; i < matches.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(StrFormat("{\"index\":%zu,\"score\":", matches[i].index));
    out.append(FormatJsonDouble(matches[i].score));
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

std::string IndexMatchResponse(const std::optional<int64_t>& id,
                               const IndexMatchOutcome& outcome,
                               bool degraded) {
  std::string out;
  AppendIdPrefix(&out, id);
  out.append("\"ok\":true,\"op\":\"index_match\",");
  if (degraded) {
    out.append("\"degraded\":true,");
  }
  out.append(StrFormat(
      "\"candidates\":%llu,\"blocking_us\":",
      static_cast<unsigned long long>(outcome.candidate_count)));
  out.append(FormatJsonDouble(outcome.blocking_us));
  out.append(",\"matches\":[");
  for (size_t i = 0; i < outcome.matches.size(); ++i) {
    const IndexMatchResult& match = outcome.matches[i];
    if (i > 0) out.push_back(',');
    out.append(StrFormat("{\"property\":%llu,\"name\":",
                         static_cast<unsigned long long>(match.property)));
    AppendJsonString(&out, match.name);
    out.append(",\"source\":");
    AppendJsonString(&out, match.source);
    out.append(",\"score\":");
    out.append(FormatJsonDouble(match.score));
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

std::string StatsResponse(const std::optional<int64_t>& id,
                          const ServiceStats& stats) {
  std::string out;
  AppendIdPrefix(&out, id);
  out.append("\"ok\":true,\"op\":\"stats\",\"stats\":{");
  auto field = [&out](const char* name, uint64_t value, bool first = false) {
    if (!first) out.push_back(',');
    out.append(StrFormat("\"%s\":%llu", name,
                         static_cast<unsigned long long>(value)));
  };
  field("requests", stats.requests, /*first=*/true);
  field("ping_requests", stats.ping_requests);
  field("score_requests", stats.score_requests);
  field("topk_requests", stats.topk_requests);
  field("index_requests", stats.index_requests);
  field("stats_requests", stats.stats_requests);
  field("admin_requests", stats.admin_requests);
  field("request_errors", stats.request_errors);
  field("pairs_scored", stats.pairs_scored);
  field("batches", stats.batches);
  out.append(",\"batch_histogram\":{");
  bool first_bucket = true;
  for (size_t i = 0; i < stats.batch_histogram.size(); ++i) {
    if (stats.batch_histogram[i] == 0) continue;
    if (!first_bucket) out.push_back(',');
    first_bucket = false;
    const std::string label = i < stats.batch_histogram_labels.size()
                                  ? stats.batch_histogram_labels[i]
                                  : StrFormat("bucket%zu", i);
    AppendJsonString(&out, label);
    out.append(StrFormat(":%llu", static_cast<unsigned long long>(
                                      stats.batch_histogram[i])));
  }
  out.push_back('}');
  field("embedding_cache_hits", stats.embedding_cache_hits);
  field("embedding_cache_misses", stats.embedding_cache_misses);
  field("embedding_cache_evictions", stats.embedding_cache_evictions);
  field("embedding_cache_max_probe", stats.embedding_cache_max_probe);
  field("property_cache_hits", stats.property_cache_hits);
  field("property_cache_misses", stats.property_cache_misses);
  field("property_cache_evictions", stats.property_cache_evictions);
  field("property_cache_max_probe", stats.property_cache_max_probe);
  field("cache_shards", stats.cache_shards);
  field("connections_accepted", stats.connections_accepted);
  field("connections_active", stats.connections_active);
  field("connections_rejected", stats.connections_rejected);
  field("rejected_overload", stats.rejected_overload);
  field("deadline_exceeded", stats.deadline_exceeded);
  field("degraded_responses", stats.degraded_responses);
  field("faults_injected", stats.faults_injected);
  out.append(",\"io_backend\":");
  AppendJsonString(&out, stats.io_backend);
  field("event_loop_threads", stats.event_loop_threads);
  field("epoll_wakeups", stats.epoll_wakeups);
  field("writable_backlog_bytes", stats.writable_backlog_bytes);
  field("queue_depth", stats.queue_depth);
  field("queue_age_us", stats.queue_age_us);
  field("latency_samples", stats.latency_samples);
  out.append(",\"kernel\":");
  AppendJsonString(&out, stats.kernel_path);
  out.append(",\"latency_p50_us\":");
  out.append(FormatJsonDouble(stats.latency_p50_us));
  out.append(",\"latency_p95_us\":");
  out.append(FormatJsonDouble(stats.latency_p95_us));
  out.append(",\"latency_p99_us\":");
  out.append(FormatJsonDouble(stats.latency_p99_us));
  field("model_version", stats.model_version);
  out.append(",\"model_fingerprint\":");
  AppendJsonString(&out, stats.model_fingerprint);
  field("model_format_version", stats.model_format_version);
  field("model_mtime", stats.model_mtime);
  field("reloads_ok", stats.reloads_ok);
  field("reloads_rejected", stats.reloads_rejected);
  field("reloads_rolled_back", stats.reloads_rolled_back);
  out.append(",\"canary_divergence\":");
  out.append(FormatJsonDouble(stats.canary_divergence));
  field("catalog_properties", stats.catalog_properties);
  field("index_candidates", stats.index_candidates);
  out.append(",\"blocking_us_total\":");
  out.append(FormatJsonDouble(stats.blocking_us_total));
  out.append(",\"blocking\":[");
  for (size_t i = 0; i < stats.blockers.size(); ++i) {
    const BlockerStat& blocker = stats.blockers[i];
    if (i > 0) out.push_back(',');
    out.append("{\"name\":");
    AppendJsonString(&out, blocker.name);
    out.append(StrFormat(
        ",\"batch_calls\":%llu,\"queries\":%llu,\"candidates\":%llu,"
        "\"total_ns\":%llu}",
        static_cast<unsigned long long>(blocker.batch_calls),
        static_cast<unsigned long long>(blocker.queries),
        static_cast<unsigned long long>(blocker.candidates),
        static_cast<unsigned long long>(blocker.total_ns)));
  }
  out.push_back(']');
  out.append(",\"feature_stages\":[");
  for (size_t i = 0; i < stats.feature_stages.size(); ++i) {
    const StageTimingStat& stage = stats.feature_stages[i];
    if (i > 0) out.push_back(',');
    out.append("{\"name\":");
    AppendJsonString(&out, stage.name);
    out.append(StrFormat(
        ",\"version\":%d,\"property_calls\":%llu,\"property_ns\":%llu,"
        "\"pair_calls\":%llu,\"pair_ns\":%llu}",
        stage.version, static_cast<unsigned long long>(stage.property_calls),
        static_cast<unsigned long long>(stage.property_ns),
        static_cast<unsigned long long>(stage.pair_calls),
        static_cast<unsigned long long>(stage.pair_ns)));
  }
  out.append("]}}");
  return out;
}

std::string HealthResponse(const std::optional<int64_t>& id, bool serving,
                           const ModelIdentity& model) {
  std::string out;
  AppendIdPrefix(&out, id);
  out.append("\"ok\":true,\"op\":\"health\",\"status\":");
  out.append(serving ? "\"serving\"" : "\"draining\"");
  out.append(StrFormat(",\"model_version\":%llu}",
                       static_cast<unsigned long long>(model.version)));
  return out;
}

std::string ReadyResponse(const std::optional<int64_t>& id, bool ready,
                          const ModelIdentity& model) {
  std::string out;
  AppendIdPrefix(&out, id);
  out.append("\"ok\":true,\"op\":\"ready\",\"ready\":");
  out.append(ready ? "true" : "false");
  out.append(StrFormat(",\"model_version\":%llu}",
                       static_cast<unsigned long long>(model.version)));
  return out;
}

std::string ReloadResponse(const std::optional<int64_t>& id,
                           const ModelIdentity& model,
                           double canary_divergence, uint64_t canary_pairs) {
  std::string out;
  AppendIdPrefix(&out, id);
  out.append(StrFormat("\"ok\":true,\"op\":\"reload\",\"model_version\":%llu",
                       static_cast<unsigned long long>(model.version)));
  out.append(",\"model_fingerprint\":");
  AppendJsonString(&out, model.fingerprint);
  out.append(StrFormat(",\"model_format_version\":%d,\"canary_pairs\":%llu",
                       model.format_version,
                       static_cast<unsigned long long>(canary_pairs)));
  out.append(",\"canary_divergence\":");
  out.append(FormatJsonDouble(canary_divergence));
  out.push_back('}');
  return out;
}

std::string ErrorResponse(const std::optional<int64_t>& id,
                          const Status& status, uint64_t retry_after_ms) {
  std::string out;
  AppendIdPrefix(&out, id);
  out.append("\"ok\":false,\"error\":{\"code\":");
  AppendJsonString(&out, std::string(StatusCodeToString(status.code())));
  out.append(",\"message\":");
  AppendJsonString(&out, status.message());
  if (retry_after_ms > 0) {
    out.append(StrFormat(",\"retry_after_ms\":%llu",
                         static_cast<unsigned long long>(retry_after_ms)));
  }
  out.append("}}");
  return out;
}

}  // namespace leapme::serve
