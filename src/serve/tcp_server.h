#ifndef LEAPME_SERVE_TCP_SERVER_H_
#define LEAPME_SERVE_TCP_SERVER_H_

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/status.h"
#include "serve/matcher_service.h"

namespace leapme::serve {

struct ServerOptions {
  /// Interface to bind; the default keeps the scorer private to the host.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Largest accepted request line. A connection that exceeds it gets one
  /// error response and is closed (the stream is no longer framed).
  size_t max_line_bytes = 1 << 20;
  /// Listen backlog.
  int backlog = 64;
  /// Per-request deadline in milliseconds, 0 = none. The budget starts
  /// when a request's first bytes arrive and covers the whole
  /// read -> batch -> score -> write path: a slow-trickling request line,
  /// a queue wait, or a slow score all count against the same clock. An
  /// expired deadline gets one typed DeadlineExceeded response and the
  /// connection is closed (the request stream may hold a half-sent line).
  int64_t deadline_ms = 0;
  /// Cap on concurrently served connections, 0 = unlimited. An accept
  /// past the cap is answered inline with one Unavailable error (carrying
  /// a retry_after_ms hint) and closed, so clients shed instead of
  /// queueing invisibly in the kernel backlog.
  size_t max_connections = 0;
};

/// Line-delimited JSON scoring server: one OS thread per connection, each
/// request line answered through MatcherService::HandleLine (which
/// funnels all scoring into the shared micro-batcher).
///
/// Lifecycle: Start() binds/listens and spawns the accept loop; Stop()
/// drains gracefully — it stops accepting, half-closes every connection
/// (SHUT_RD), lets workers finish writing responses for requests already
/// received, and joins all threads. Stop() is idempotent and also runs on
/// destruction. ServeUntilShutdown() parks the caller until SIGINT /
/// SIGTERM (or RequestShutdown()), then Stops.
class TcpServer {
 public:
  /// `service` must outlive the server.
  TcpServer(MatcherService* service, ServerOptions options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts accepting. Fails on unparseable hosts,
  /// bind/listen errors (e.g. port in use).
  Status Start();

  /// The bound port (useful with port 0); valid after a successful Start.
  int port() const { return port_; }

  /// Graceful shutdown as described above. Safe to call from any thread
  /// other than a connection worker.
  void Stop();

  /// Blocks until a process shutdown signal arrives, then Stop()s.
  /// Requires a successful Start.
  Status ServeUntilShutdown();

 private:
  void AcceptLoop();
  /// Joins workers whose connections have finished, so thread handles do
  /// not accumulate over the lifetime of a long-running server.
  void ReapFinishedWorkers();
  void HandleConnection(int fd);
  /// Handles every complete line in `buffer`, erasing consumed bytes.
  /// `deadline` is the in-flight request's budget; it is restarted after
  /// each answered line and cleared (infinite) when the buffer drains.
  /// Returns false when the connection must close (oversized line, write
  /// failure).
  bool DrainBuffer(int fd, std::string& buffer, Deadline* deadline);
  bool SendLine(int fd, std::string line);

  MatcherService* service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // Stop() wakes the accept poll
  int port_ = -1;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::unordered_map<uint64_t, int> conn_fds_;  // token -> open socket
  std::unordered_map<uint64_t, std::thread> conn_threads_;
  std::vector<uint64_t> finished_tokens_;  // ready to join
  uint64_t next_conn_token_ = 0;
};

}  // namespace leapme::serve

#endif  // LEAPME_SERVE_TCP_SERVER_H_
