#ifndef LEAPME_SERVE_TCP_SERVER_H_
#define LEAPME_SERVE_TCP_SERVER_H_

#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/status_or.h"
#include "serve/matcher_service.h"

namespace leapme::serve {

/// How the server multiplexes connections onto OS threads.
enum class IoBackend {
  /// Non-blocking epoll readiness loop(s) owning per-connection state
  /// machines, with a small fixed worker pool executing requests. Scales
  /// to tens of thousands of idle keep-alive connections (DESIGN.md §16).
  kEpoll,
};

/// Parses "epoll". "threaded" — the retired thread-per-connection
/// design, selectable for one release after the reactor landed — gets a
/// dedicated InvalidArgument naming the migration path; anything else is
/// a plain InvalidArgument.
StatusOr<IoBackend> ParseIoBackend(const std::string& name);
const char* IoBackendName(IoBackend backend);

/// Backend selected by $LEAPME_IO_BACKEND; "epoll" is the only live
/// value. A malformed or retired value logs a warning and falls back to
/// epoll (environments migrate more slowly than flags, so the env path
/// degrades gracefully where the explicit --io-backend flag refuses).
IoBackend IoBackendFromEnv();
/// Event-loop thread count from $LEAPME_EVENT_LOOP_THREADS (clamped to
/// [1, 64]); defaults to 1 — one reactor loop drives tens of thousands
/// of connections, more loops spread readiness work across cores.
size_t EventLoopThreadsFromEnv();

struct ServerOptions {
  /// Interface to bind; the default keeps the scorer private to the host.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Largest accepted request line. A connection that exceeds it gets one
  /// error response and is closed (the stream is no longer framed).
  size_t max_line_bytes = 1 << 20;
  /// Listen backlog.
  int backlog = 64;
  /// Per-request deadline in milliseconds, 0 = none. The budget starts
  /// when a request's first bytes arrive and covers the whole
  /// read -> batch -> score -> write path: a slow-trickling request line,
  /// a queue wait, a slow score, or a peer that stops reading the
  /// response all count against the same clock. An expired deadline gets
  /// one typed DeadlineExceeded response and the connection is closed
  /// (the request stream may hold a half-sent line).
  int64_t deadline_ms = 0;
  /// Cap on concurrently served connections, 0 = unlimited. An accept
  /// past the cap is answered inline with one Unavailable error (carrying
  /// a retry_after_ms hint) and closed, so clients shed instead of
  /// queueing invisibly in the kernel backlog.
  size_t max_connections = 0;
  /// Connection multiplexing strategy; see IoBackend.
  IoBackend io_backend = IoBackendFromEnv();
  /// Reactor loops. Connections are assigned round-robin to loops at
  /// accept time and stay pinned, so all state of one connection is
  /// touched by exactly one loop thread.
  size_t event_loop_threads = EventLoopThreadsFromEnv();
  /// Worker threads executing requests for the reactor. Workers block in
  /// MatcherService::HandleLine (micro-batch wait included) and post
  /// finished responses back to the owning loop, so the loops themselves
  /// never block on scoring.
  size_t worker_threads = 4;
  /// SO_SNDBUF for accepted connections (0 = OS default), set on the
  /// listening socket so accepts inherit it. Tests use a tiny buffer to
  /// force writable backpressure deterministically.
  int sndbuf_bytes = 0;
};

namespace internal {

/// One serving backend behind the TcpServer facade. Implementations must
/// make Stop() idempotent and callable after a failed Start().
class ServerImpl {
 public:
  virtual ~ServerImpl() = default;
  virtual Status Start() = 0;
  virtual void Stop() = 0;
  virtual int port() const = 0;
};

}  // namespace internal

/// Line-delimited JSON scoring server. Each request line is answered
/// through MatcherService::HandleLine (which funnels all scoring into
/// the shared micro-batcher); connections are multiplexed by the epoll
/// reactor (DESIGN.md §16 — the legacy thread-per-connection backend was
/// retired one release after the reactor replaced it as the default).
///
/// Lifecycle: Start() binds/listens and starts serving; Stop() drains
/// gracefully — it stops accepting, lets requests already received
/// finish writing their responses, and joins all threads. Stop() is
/// idempotent and also runs on destruction. ServeUntilShutdown() parks
/// the caller until SIGINT / SIGTERM (or RequestShutdown()), then Stops.
class TcpServer {
 public:
  /// `service` must outlive the server.
  TcpServer(MatcherService* service, ServerOptions options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts accepting. Fails on unparseable hosts,
  /// bind/listen errors (e.g. port in use).
  Status Start();

  /// The bound port (useful with port 0); valid after a successful Start.
  int port() const;

  /// Graceful shutdown as described above. Safe to call from any thread
  /// other than a connection worker.
  void Stop();

  /// Blocks until a process shutdown signal arrives, then Stop()s.
  /// Requires a successful Start. `on_tick`, when given, runs on the
  /// parked thread roughly every poll interval (~250ms) and after every
  /// signal-pipe wakeup that was not a shutdown — it is how the serve
  /// command notices SIGHUP reload requests and model-file mtime changes
  /// without a dedicated watcher thread.
  Status ServeUntilShutdown(const std::function<void()>& on_tick = nullptr);

 private:
  MatcherService* service_;
  ServerOptions options_;
  std::unique_ptr<internal::ServerImpl> impl_;
  bool started_ = false;
};

}  // namespace leapme::serve

#endif  // LEAPME_SERVE_TCP_SERVER_H_
