#ifndef LEAPME_SERVE_MATCHER_SERVICE_H_
#define LEAPME_SERVE_MATCHER_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "blocking/candidate_pipeline.h"
#include "common/cache/sharded_cache.h"
#include "common/deadline.h"
#include "common/metrics.h"
#include "common/status_or.h"
#include "core/leapme.h"
#include "data/dataset.h"
#include "embedding/caching_model.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"

namespace leapme::serve {

struct ServiceOptions {
  /// Largest number of pairs scored in one DesignMatrix/Infer call.
  size_t max_batch = 256;
  /// How long the batcher waits for more pairs after the first one
  /// arrives before flushing a partial batch. 0 flushes immediately.
  size_t batch_window_us = 200;
  /// Entries kept in the per-property feature-vector cache (rounded up
  /// to the sharded cache's power-of-two bucket grid).
  size_t property_cache_capacity = 4096;
  /// Partitions of the property-feature cache. 0 takes the count from
  /// LEAPME_CACHE_SHARDS (default 16); `leapme serve` exposes it as
  /// --cache-shards.
  size_t property_cache_shards = 0;
  /// Samples kept in the request-latency window for percentile stats.
  size_t latency_window = 4096;
  /// Bound on the pairs admitted into the micro-batch queue. A request
  /// whose pairs would push the queue past this limit is refused with a
  /// typed ResourceExhausted (and counted in rejected_overload) instead
  /// of growing the queue without bound under overload. 0 = unbounded
  /// (the library default; `leapme serve` bounds it via --max-queue).
  size_t max_queue_pairs = 0;
};

/// A thread-safe online-matching session over the generations of a
/// ModelRegistry (or, in the legacy embedder path, one fixed fitted
/// matcher wrapped into an internal registry).
///
/// Every request acquires the serving ModelGeneration once at entry and
/// carries that shared_ptr through feature gathering, the micro-batch
/// queue, and scoring — a hot reload that lands mid-request is invisible
/// to it, and the old generation is freed when its last in-flight pair
/// completes (DESIGN.md §18).
///
/// Concurrent Score/TopK callers do not run inference independently:
/// every pair is enqueued with a completion slot, and a single batcher
/// thread drains the queue into micro-batches of up to `max_batch` pairs
/// (waiting `batch_window_us` for stragglers). A batch drained across a
/// reload boundary may hold pairs from two generations; the batcher
/// groups rows by generation and issues one ScoreFeaturePairs call per
/// group, so batching stays invisible in the results — scores are
/// bit-identical to offline ScorePairs at any batch composition and any
/// reload schedule.
///
/// Two caches sit in front of each generation's matcher: its
/// CachingEmbeddingModel (token -> vector) and its own sharded
/// concurrent cache keyed by name + instance values holding finished
/// per-property feature vectors (a swapped-in model starts cold — it
/// must never serve features computed by its predecessor). Each
/// Score/TopK request gathers all its property features through one
/// batched, prefetch-ahead cache wave before its pairs enter the
/// micro-batch queue (DESIGN.md §17).
class MatcherService {
 public:
  /// Serves the generations of `registry`, which must be initialized
  /// (Init / WrapExisting) and outlive the service. Reload-capable when
  /// the registry has a Loader.
  explicit MatcherService(ModelRegistry* registry,
                          ServiceOptions options = {});

  /// Legacy embedder path: wraps `matcher` (fitted, must outlive the
  /// service) and `embedding_cache` (may be null; only read for stats —
  /// the matcher's pipeline already uses it for lookups) into an
  /// internal single-generation registry. Such a service cannot reload.
  MatcherService(const core::LeapmeMatcher* matcher,
                 const embedding::CachingEmbeddingModel* embedding_cache,
                 ServiceOptions options = {});

  /// Validated construction for serving entry points: returns a typed
  /// FailedPrecondition instead of serving wrong scores when `matcher` is
  /// unfitted or `embedding_cache` (when given) has a different dimension
  /// than the one the matcher's feature pipeline was built over. (A
  /// fingerprint-mismatched model never reaches this point — LoadModel
  /// already refuses it.)
  static StatusOr<std::unique_ptr<MatcherService>> Create(
      const core::LeapmeMatcher* matcher,
      const embedding::CachingEmbeddingModel* embedding_cache,
      ServiceOptions options = {});

  /// Validated construction over an initialized registry (the registry's
  /// own Init already gated the model through ValidateServingModel).
  static StatusOr<std::unique_ptr<MatcherService>> Create(
      ModelRegistry* registry, ServiceOptions options = {});

  /// Drains outstanding work and stops the batcher thread.
  ~MatcherService();

  MatcherService(const MatcherService&) = delete;
  MatcherService& operator=(const MatcherService&) = delete;

  /// Scores each a/b pair; blocks until the micro-batcher has scored
  /// every pair of this request.
  StatusOr<std::vector<double>> Score(
      const std::vector<PropertyPairSpec>& pairs) {
    return Score(pairs, Deadline::Infinite(), nullptr);
  }

  /// Score with overload semantics: refuses admission past the queue
  /// bound (ResourceExhausted), gives up when `deadline` passes before
  /// the scores are ready (DeadlineExceeded), and — when an embedding
  /// lookup fails mid-request — still scores the affected pairs with
  /// embedding features masked, setting `*degraded` (may be null) so the
  /// transport can tag the response instead of failing the batch.
  StatusOr<std::vector<double>> Score(
      const std::vector<PropertyPairSpec>& pairs, Deadline deadline,
      bool* degraded);

  /// Scores `query` against every candidate and returns the k best
  /// (score descending, candidate index ascending on ties).
  StatusOr<std::vector<MatchResult>> TopK(
      const PropertySpec& query,
      const std::vector<PropertySpec>& candidates, size_t k) {
    return TopK(query, candidates, k, Deadline::Infinite(), nullptr);
  }

  /// TopK with the same overload semantics as the deadline Score.
  StatusOr<std::vector<MatchResult>> TopK(
      const PropertySpec& query,
      const std::vector<PropertySpec>& candidates, size_t k,
      Deadline deadline, bool* degraded);

  /// Catalog-index mode: attaches a pre-loaded dataset and its blocking
  /// pipeline to the *current* generation — builds the blocker index and
  /// precomputes every catalog property's feature vector once so
  /// index_match requests only compute features for the incoming
  /// property. Both pointers must outlive the service. Not thread-safe —
  /// call once, before serving. (Registry-backed servers instead call
  /// ModelRegistry::AttachCatalog, which also re-attaches on reload.)
  Status AttachCatalog(const data::Dataset* catalog,
                       blocking::CandidatePipeline* pipeline);

  /// Answers one index_match request: blocks `query` against the attached
  /// catalog (FailedPrecondition when none is attached), scores the
  /// blocked candidates through the micro-batcher, and returns the k best
  /// catalog properties (score descending, property id ascending on
  /// ties) plus blocking metrics. When candidate generation itself fails
  /// (e.g. an injected embedding fault inside an LSH blocker), the
  /// request degrades to scoring the full catalog instead of failing:
  /// `*degraded` is set and the response stays usable. Deadline and
  /// overload semantics match Score/TopK, with the deadline also covering
  /// the blocking step.
  StatusOr<IndexMatchOutcome> IndexMatch(const PropertySpec& query, size_t k,
                                         Deadline deadline, bool* degraded);

  /// Full protocol dispatch for one request line: parse, execute,
  /// serialize. Never fails — protocol and execution errors become
  /// ok:false responses.
  std::string HandleLine(std::string_view line) {
    return HandleLine(line, Deadline::Infinite());
  }

  /// HandleLine under a request deadline (started by the transport when
  /// the request's first bytes arrived). An expired deadline at any stage
  /// becomes a typed DeadlineExceeded error response.
  std::string HandleLine(std::string_view line, Deadline deadline);

  /// Connection lifecycle hooks, called by the transport so connection
  /// counts show up in the "stats" op.
  void OnConnectionOpened() {
    connections_accepted_.Increment();
    connections_active_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnConnectionClosed() {
    connections_active_.fetch_sub(1, std::memory_order_relaxed);
  }
  /// Called by the transport when an accept is turned away at the
  /// connection cap (the peer got an Unavailable reply and a close).
  void OnConnectionRejected() { connections_rejected_.Increment(); }
  /// Called by the transport when a request's deadline expired before its
  /// line finished arriving (the service never saw a parseable request).
  void OnRequestTimeout() {
    deadline_exceeded_.Increment();
    request_errors_.Increment();
  }

  /// Drain gate for the `ready`/`health` ops: TcpServer::Stop flips it
  /// before the transport stops accepting, so load balancers polling
  /// `ready` steer traffic away while in-flight requests finish.
  void SetDraining(bool draining) {
    draining_.store(draining, std::memory_order_relaxed);
  }
  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }
  /// ready = not draining and no reload mid-flight.
  bool ready() const {
    return !draining() && !registry_->reload_in_progress();
  }

  /// The registry this service scores through (never null).
  ModelRegistry* registry() const { return registry_; }

  /// Transport identification, pushed once by TcpServer::Start so the
  /// "stats" op reports which I/O backend is serving and how many reactor
  /// loops it runs (0 for the threaded backend).
  void SetTransport(const std::string& io_backend,
                    uint64_t event_loop_threads) {
    std::lock_guard<std::mutex> lock(transport_mu_);
    transport_backend_ = io_backend;
    transport_loops_ = event_loop_threads;
  }
  /// Reactor gauges, pushed by the epoll backend: one call per
  /// epoll_wait return, and signed deltas tracking the total unflushed
  /// response bytes across all per-connection output queues.
  void OnEpollWakeup() { epoll_wakeups_.Increment(); }
  void AddWritableBacklog(int64_t delta) {
    writable_backlog_bytes_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// All counters exposed by the "stats" op.
  ServiceStats Snapshot() const;

  const ServiceOptions& options() const { return options_; }

 private:
  using FeaturePtr = ModelGeneration::FeaturePtr;
  using GenerationPtr = std::shared_ptr<const ModelGeneration>;

  /// Completion state shared by all in-flight pairs of one request.
  struct ScoreJob {
    explicit ScoreJob(size_t pair_count)
        : scores(pair_count), remaining(pair_count) {}
    std::mutex mu;
    std::condition_variable cv;
    std::vector<double> scores;
    size_t remaining;
    Status status;  // first failure wins
  };

  struct PendingPair {
    FeaturePtr a;
    FeaturePtr b;
    /// The generation this pair's features were computed with. Held
    /// until the pair is scored, so a hot swap can never destroy the
    /// matcher under a queued pair; the batcher scores each batch
    /// grouped by generation.
    GenerationPtr generation;
    std::shared_ptr<ScoreJob> job;
    size_t index;  // row in job->scores
    /// Either side's embedding lookup failed: score with embedding
    /// columns masked instead of failing the batch.
    bool degraded = false;
    /// The owning request's deadline; the batcher sheds pairs that
    /// expire while queued instead of scoring work nobody waits for.
    Deadline deadline;
    /// Admission instant, for the queue_age_us gauge.
    std::chrono::steady_clock::time_point enqueued;
  };

  /// Computes (or fetches from the generation's cache) the feature
  /// vector of `spec`. When the embedding.lookup fault point fires on a
  /// cache miss, `*degraded` is set and the (untrusted) features are not
  /// cached.
  FeaturePtr GetPropertyFeatures(const ModelGeneration& generation,
                                 const PropertySpec& spec, bool* degraded);

  /// Counted single-key resolve behind GetPropertyFeatures and the
  /// batch gather: probe (hit or miss counted), compute on miss, cache
  /// unless the embedding fault fired.
  FeaturePtr ResolvePropertyFeatures(const ModelGeneration& generation,
                                     std::string_view key,
                                     const PropertySpec& spec,
                                     bool* degraded);

  /// Fetches every spec's features with one prefetch-ahead LookupBatch
  /// wave over the generation's property cache, resolving misses through
  /// the counted single-key path. `out[i]` receives spec i's features
  /// and `degraded[i]` is set when its embedding lookup failed (those
  /// features are never cached).
  void GatherPropertyFeatures(const ModelGeneration& generation,
                              const std::vector<const PropertySpec*>& specs,
                              FeaturePtr* out, uint8_t* degraded);

  /// Enqueues pairs for the batcher and blocks until the job completes
  /// or `deadline` passes. Refuses admission (ResourceExhausted) when
  /// the queue bound would be exceeded.
  StatusOr<std::vector<double>> ScoreFeaturePairsBatched(
      std::vector<PendingPair> pending, std::shared_ptr<ScoreJob> job,
      Deadline deadline);

  void BatcherLoop();
  void ScoreBatch(std::vector<PendingPair>& batch);
  /// Scores one same-generation slice [begin, end) of a drained batch
  /// with a single ScoreFeaturePairs call and completes its jobs.
  void ScoreBatchGroup(std::vector<PendingPair>& batch, size_t begin,
                       size_t end);

  /// The generations served; either external (registry ctor) or the
  /// internal single-generation wrap (legacy ctor).
  std::unique_ptr<ModelRegistry> owned_registry_;
  ModelRegistry* registry_;
  const ServiceOptions options_;
  std::atomic<bool> draining_{false};

  // Micro-batch queue. Mutable so the const Snapshot() can read the
  // queue_depth/queue_age_us gauges under the lock.
  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingPair> queue_;
  bool stop_ = false;
  std::thread batcher_;

  // Stats.
  Counter ping_requests_;
  Counter score_requests_;
  Counter topk_requests_;
  Counter index_requests_;
  Counter index_candidates_;
  Counter blocking_ns_;
  Counter stats_requests_;
  Counter admin_requests_;
  Counter request_errors_;
  Counter pairs_scored_;
  Counter batches_;
  BucketHistogram batch_sizes_{10};
  Counter connections_accepted_;
  Counter connections_rejected_;
  Counter rejected_overload_;
  Counter deadline_exceeded_;
  Counter degraded_responses_;
  std::atomic<uint64_t> connections_active_{0};
  // Transport info + reactor gauges (SetTransport / OnEpollWakeup /
  // AddWritableBacklog).
  mutable std::mutex transport_mu_;
  std::string transport_backend_;
  uint64_t transport_loops_ = 0;
  Counter epoll_wakeups_;
  std::atomic<int64_t> writable_backlog_bytes_{0};
  LatencyRecorder latency_;
};

}  // namespace leapme::serve

#endif  // LEAPME_SERVE_MATCHER_SERVICE_H_
