#ifndef LEAPME_SERVE_MATCHER_SERVICE_H_
#define LEAPME_SERVE_MATCHER_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status_or.h"
#include "core/leapme.h"
#include "embedding/caching_model.h"
#include "serve/protocol.h"

namespace leapme::serve {

struct ServiceOptions {
  /// Largest number of pairs scored in one DesignMatrix/Infer call.
  size_t max_batch = 256;
  /// How long the batcher waits for more pairs after the first one
  /// arrives before flushing a partial batch. 0 flushes immediately.
  size_t batch_window_us = 200;
  /// Entries kept in the per-property feature-vector LRU cache.
  size_t property_cache_capacity = 4096;
  /// Samples kept in the request-latency window for percentile stats.
  size_t latency_window = 4096;
};

/// A thread-safe online-matching session over one fitted (typically
/// LoadModel-restored) LeapmeMatcher.
///
/// Concurrent Score/TopK callers do not run inference independently:
/// every pair is enqueued with a completion slot, and a single batcher
/// thread drains the queue into micro-batches of up to `max_batch` pairs
/// (waiting `batch_window_us` for stragglers), scoring each batch with
/// one ScoreFeaturePairs call on the shared thread pool. Batching is
/// invisible in the results — scores are bit-identical to offline
/// ScorePairs at any batch composition — it only changes throughput.
///
/// Two caches sit in front of the matcher: the CachingEmbeddingModel the
/// matcher was built over (token -> vector; pass it in so its hit rate
/// shows up in stats) and an internal LRU keyed by name + instance
/// values holding finished per-property feature vectors.
class MatcherService {
 public:
  /// `matcher` must be fitted and outlive the service. `embedding_cache`
  /// may be null; when given it must also outlive the service (it is only
  /// read for stats — the matcher's pipeline already uses it for
  /// lookups).
  MatcherService(const core::LeapmeMatcher* matcher,
                 const embedding::CachingEmbeddingModel* embedding_cache,
                 ServiceOptions options = {});

  /// Validated construction for serving entry points: returns a typed
  /// FailedPrecondition instead of serving wrong scores when `matcher` is
  /// unfitted or `embedding_cache` (when given) has a different dimension
  /// than the one the matcher's feature pipeline was built over. (A
  /// fingerprint-mismatched model never reaches this point — LoadModel
  /// already refuses it.)
  static StatusOr<std::unique_ptr<MatcherService>> Create(
      const core::LeapmeMatcher* matcher,
      const embedding::CachingEmbeddingModel* embedding_cache,
      ServiceOptions options = {});

  /// Drains outstanding work and stops the batcher thread.
  ~MatcherService();

  MatcherService(const MatcherService&) = delete;
  MatcherService& operator=(const MatcherService&) = delete;

  /// Scores each a/b pair; blocks until the micro-batcher has scored
  /// every pair of this request.
  StatusOr<std::vector<double>> Score(
      const std::vector<PropertyPairSpec>& pairs);

  /// Scores `query` against every candidate and returns the k best
  /// (score descending, candidate index ascending on ties).
  StatusOr<std::vector<MatchResult>> TopK(
      const PropertySpec& query,
      const std::vector<PropertySpec>& candidates, size_t k);

  /// Full protocol dispatch for one request line: parse, execute,
  /// serialize. Never fails — protocol and execution errors become
  /// ok:false responses.
  std::string HandleLine(std::string_view line);

  /// Connection lifecycle hooks, called by the transport so connection
  /// counts show up in the "stats" op.
  void OnConnectionOpened() {
    connections_accepted_.Increment();
    connections_active_.fetch_add(1, std::memory_order_relaxed);
  }
  void OnConnectionClosed() {
    connections_active_.fetch_sub(1, std::memory_order_relaxed);
  }

  /// All counters exposed by the "stats" op.
  ServiceStats Snapshot() const;

  const ServiceOptions& options() const { return options_; }

 private:
  using FeaturePtr = std::shared_ptr<const features::PropertyFeatures>;

  /// Completion state shared by all in-flight pairs of one request.
  struct ScoreJob {
    explicit ScoreJob(size_t pair_count)
        : scores(pair_count), remaining(pair_count) {}
    std::mutex mu;
    std::condition_variable cv;
    std::vector<double> scores;
    size_t remaining;
    Status status;  // first failure wins
  };

  struct PendingPair {
    FeaturePtr a;
    FeaturePtr b;
    std::shared_ptr<ScoreJob> job;
    size_t index;  // row in job->scores
  };

  /// Computes (or fetches from the LRU) the feature vector of `spec`.
  FeaturePtr GetPropertyFeatures(const PropertySpec& spec);

  /// Enqueues pairs for the batcher and blocks until the job completes.
  StatusOr<std::vector<double>> ScoreFeaturePairsBatched(
      std::vector<PendingPair> pending, std::shared_ptr<ScoreJob> job);

  void BatcherLoop();
  void ScoreBatch(std::vector<PendingPair>& batch);

  const core::LeapmeMatcher* matcher_;
  const embedding::CachingEmbeddingModel* embedding_cache_;
  const ServiceOptions options_;

  // Property-feature LRU (front = most recently used); keys view into the
  // stable key strings stored in the list nodes.
  struct CacheEntry {
    std::string key;
    FeaturePtr features;
  };
  mutable std::mutex cache_mu_;
  std::list<CacheEntry> cache_lru_;
  std::unordered_map<std::string_view, std::list<CacheEntry>::iterator>
      cache_index_;

  // Micro-batch queue.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingPair> queue_;
  bool stop_ = false;
  std::thread batcher_;

  // Stats.
  Counter ping_requests_;
  Counter score_requests_;
  Counter topk_requests_;
  Counter stats_requests_;
  Counter request_errors_;
  Counter pairs_scored_;
  Counter batches_;
  BucketHistogram batch_sizes_{10};
  Counter property_cache_hits_;
  Counter property_cache_misses_;
  Counter connections_accepted_;
  std::atomic<uint64_t> connections_active_{0};
  LatencyRecorder latency_;
};

}  // namespace leapme::serve

#endif  // LEAPME_SERVE_MATCHER_SERVICE_H_
