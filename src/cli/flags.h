#ifndef LEAPME_CLI_FLAGS_H_
#define LEAPME_CLI_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status_or.h"

namespace leapme::cli {

/// Minimal command-line parser for the leapme tool: a positional command
/// followed by `--key value` flags.
class Flags {
 public:
  /// Parses argv[1..]: the first non-flag token is the command; every
  /// flag must have a value. Unknown flags are kept (validated per
  /// command). Fails on a flag without value.
  static StatusOr<Flags> Parse(int argc, const char* const* argv);

  const std::string& command() const { return command_; }

  bool Has(const std::string& key) const {
    return values_.find(key) != values_.end();
  }
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  double GetDouble(const std::string& key, double fallback) const;

  /// Strict variants: an absent flag yields `fallback`, but a present
  /// flag that is non-numeric, fractional (for the integer variant), or
  /// outside [min, max] is an InvalidArgument naming the flag — never a
  /// silent fallback. Commands use these for every numeric flag so typos
  /// like `--threads x` or `--port 0` fail loudly.
  StatusOr<int64_t> GetIntInRange(const std::string& key, int64_t fallback,
                                  int64_t min, int64_t max) const;
  StatusOr<double> GetDoubleInRange(const std::string& key, double fallback,
                                    double min, double max) const;

  /// Fails when any present flag is not in `allowed` (catches typos).
  Status CheckAllowed(const std::vector<std::string>& allowed) const;

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
};

}  // namespace leapme::cli

#endif  // LEAPME_CLI_FLAGS_H_
