#ifndef LEAPME_CLI_COMMANDS_H_
#define LEAPME_CLI_COMMANDS_H_

#include "cli/flags.h"
#include "common/status.h"

namespace leapme::cli {

/// `leapme generate`: writes a synthetic multi-source product catalog as
/// TSV. Flags: --domain cameras|headphones|phones|tvs, --sources N,
/// --entities N, --seed N, --out FILE.
Status RunGenerate(const Flags& flags);

/// `leapme evaluate`: trains LEAPME on a fraction of a TSV dataset's
/// sources and reports P/R/F1 (plus best-F1 operating point and average
/// precision) on the remaining sources. Flags: --data FILE,
/// --train-fraction F, --seed N, --embeddings GLOVE_FILE | --domain NAME,
/// --emb-dim N, --reps N, --features origin/kinds, --model-out FILE.
Status RunEvaluate(const Flags& flags);

/// `leapme match`: prints the discovered matches (similarity edges).
/// Trains on a fraction of sources and scores the remaining pairs, or —
/// with --model-in FILE — loads a matcher saved by `evaluate
/// --model-out` and scores every cross-source pair without retraining.
/// Flags as for evaluate, plus --model-in FILE, --threshold T, --limit N.
Status RunMatch(const Flags& flags);

/// `leapme cluster`: full pipeline — train (or load via --model-in),
/// build the similarity graph over all cross-source pairs, star-cluster
/// it and print the clusters. Flags as for evaluate, plus --model-in
/// FILE and --threshold T.
Status RunCluster(const Flags& flags);

/// `leapme serve`: long-lived TCP scoring server over a saved model.
/// Loads the matcher from --model FILE, wraps the embedding model in a
/// bounded LRU cache, and answers line-delimited JSON score / topk /
/// stats requests on --port N, micro-batching concurrent requests into
/// single inference calls (see src/serve/). Flags: --model FILE --port N
/// [--host A] [--max-batch N] [--batch-window-us N] [--emb-cache N]
/// [--prop-cache N] [--threads N] plus the evaluate embedding flags
/// (--embeddings | --domain, --emb-dim, --seed).
Status RunServe(const Flags& flags);

/// `leapme stats`: prints dataset statistics (sources, properties,
/// alignment coverage, balance). Flags: --data FILE.
Status RunStats(const Flags& flags);

/// Dispatches to the command handlers; prints usage on empty/unknown
/// command. Returns the process exit code.
int RunCli(int argc, const char* const* argv);

}  // namespace leapme::cli

#endif  // LEAPME_CLI_COMMANDS_H_
