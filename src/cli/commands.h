#ifndef LEAPME_CLI_COMMANDS_H_
#define LEAPME_CLI_COMMANDS_H_

#include "cli/flags.h"
#include "common/status.h"

namespace leapme::cli {

/// `leapme generate`: writes a synthetic multi-source product catalog as
/// TSV. Flags: --domain cameras|headphones|phones|tvs, --sources N,
/// --entities N, --seed N, --out FILE.
Status RunGenerate(const Flags& flags);

/// `leapme evaluate`: trains LEAPME on a fraction of a TSV dataset's
/// sources and reports P/R/F1 (plus best-F1 operating point and average
/// precision) on the remaining sources. Flags: --data FILE,
/// --train-fraction F, --seed N, --embeddings GLOVE_FILE | --domain NAME,
/// --emb-dim N, --reps N, --features origin/kinds, --model-out FILE.
Status RunEvaluate(const Flags& flags);

/// `leapme match`: trains on a fraction of sources and prints the
/// discovered matches (similarity edges) for the remaining pairs.
/// Flags as for evaluate, plus --threshold T and --limit N.
Status RunMatch(const Flags& flags);

/// `leapme cluster`: full pipeline — train, build the similarity graph
/// over all cross-source pairs, star-cluster it and print the clusters.
/// Flags as for evaluate, plus --threshold T.
Status RunCluster(const Flags& flags);

/// `leapme stats`: prints dataset statistics (sources, properties,
/// alignment coverage, balance). Flags: --data FILE.
Status RunStats(const Flags& flags);

/// Dispatches to the command handlers; prints usage on empty/unknown
/// command. Returns the process exit code.
int RunCli(int argc, const char* const* argv);

}  // namespace leapme::cli

#endif  // LEAPME_CLI_COMMANDS_H_
