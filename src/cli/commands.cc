#include "cli/commands.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>

#include "blocking/candidate_pipeline.h"
#include "common/parallel.h"
#include "common/signal.h"
#include "common/string_util.h"
#include "core/leapme.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "data/statistics.h"
#include "data/tsv_io.h"
#include "embedding/caching_model.h"
#include "embedding/synthetic_model.h"
#include "embedding/text_embedding_file.h"
#include "features/feature_registry.h"
#include "graph/similarity_graph.h"
#include "ml/metrics.h"
#include "serve/matcher_service.h"
#include "serve/tcp_server.h"

namespace leapme::cli {

namespace {

constexpr const char* kUsage =
    "usage: leapme <command> [--flag value ...]\n"
    "\n"
    "commands:\n"
    "  generate   write a synthetic multi-source product catalog as TSV\n"
    "             --domain cameras|headphones|phones|tvs|groceries|autos\n"
    "             --sources N --entities N --seed N --out FILE\n"
    "             [--scale-properties N] multi-category catalog with ~N\n"
    "             properties across all domains (ignores --domain)\n"
    "  stats      print dataset statistics           --data FILE\n"
    "  evaluate   train on a fraction of sources, report P/R/F1 on the rest\n"
    "             --data FILE [--train-fraction 0.8] [--seed 7]\n"
    "             [--embeddings GLOVE_FILE | --domain NAME] [--emb-dim 64]\n"
    "             [--features origin/kinds | stage,stage,...] (stages:\n"
    "             char_class_meta, token_class_meta, numeric_value,\n"
    "             value_embedding, name_embedding, string_distances)\n"
    "             [--max-instances-per-property N] (0 = use all values)\n"
    "             [--blocking SPEC] (candidate generation before scoring;\n"
    "             default all-pairs = score everything. Specs: all-pairs,\n"
    "             name-token[:max-freq=F], embedding-lsh[:bands=N:bits=N:\n"
    "             seed=N], union(spec,spec,...))\n"
    "             [--model-out FILE]\n"
    "             [--threads N] (defaults to LEAPME_THREADS env or all\n"
    "             cores; results are identical at any thread count)\n"
    "  match      print discovered matches among the held-out sources\n"
    "             (evaluate flags plus [--threshold 0.5] [--limit 25]);\n"
    "             with --model-in FILE scores all cross-source pairs\n"
    "             using a saved model instead of retraining;\n"
    "             --blocking restricts scoring to blocked candidates\n"
    "  cluster    train (or load --model-in FILE), build the similarity\n"
    "             graph over candidate pairs (--blocking, default\n"
    "             all-pairs) and print star clusters\n"
    "             (evaluate flags plus [--threshold])\n"
    "  serve      serve a saved model over TCP (line-delimited JSON)\n"
    "             --model FILE --port N [--host 127.0.0.1]\n"
    "             (--port 0 binds an ephemeral port, printed on stderr)\n"
    "             [--max-batch 256] [--batch-window-us 200]\n"
    "             [--emb-cache 65536] [--prop-cache 4096] [--threads N]\n"
    "             [--cache-shards 0] (cache partitions, 0 = \n"
    "             $LEAPME_CACHE_SHARDS or 16; power of two)\n"
    "             [--deadline-ms 0] (0 = no per-request deadline)\n"
    "             [--max-connections 0] (0 = unlimited; above the cap,\n"
    "             accepts get one Unavailable reply and a close)\n"
    "             [--max-queue 65536] (admission-queue bound in pairs;\n"
    "             0 = unbounded; overflow gets ResourceExhausted)\n"
    "             [--io-backend epoll] (or $LEAPME_IO_BACKEND; the\n"
    "             legacy 'threaded' backend is retired)\n"
    "             [--event-loop-threads 1] (epoll reactor loops, or\n"
    "             $LEAPME_EVENT_LOOP_THREADS)\n"
    "             [--index-data FILE] (load a catalog, build the blocker\n"
    "             index once, and answer index_match requests that score\n"
    "             one property against blocked catalog candidates)\n"
    "             [--blocking SPEC] (index blocker; default\n"
    "             union(name-token,embedding-lsh); requires --index-data)\n"
    "             [--model-watch MS] (poll the model file's mtime every\n"
    "             MS ms and hot-reload on change; 0 = off. SIGHUP and the\n"
    "             'reload' op trigger the same staged reload)\n"
    "             [--canary-threshold 0.5] (max score divergence the\n"
    "             shadow canary tolerates before rejecting a reload)\n"
    "             [--rollback-error-rate 0] (post-swap error fraction\n"
    "             that auto-rolls back to the previous model; 0 = off)\n"
    "             plus the evaluate embedding flags\n";

StatusOr<const data::DomainSpec*> DomainByName(const std::string& name) {
  for (const data::DomainSpec* domain : data::AllDomains()) {
    if (domain->name == name) return domain;
  }
  return Status::InvalidArgument(
      "unknown domain '" + name +
      "' (cameras|headphones|phones|tvs|groceries|autos)");
}

/// Builds the embedding model per the flags: a GloVe-format file, a
/// domain-specific synthetic space, or a hashed-vector-only fallback.
/// `seed` comes from the caller's one --seed parse (ParseMatcherFlags).
StatusOr<std::unique_ptr<embedding::EmbeddingModel>> BuildEmbeddings(
    const Flags& flags, uint64_t seed) {
  LEAPME_ASSIGN_OR_RETURN(const int64_t emb_dim,
                          flags.GetIntInRange("emb-dim", 64, 1, 65536));
  const auto dimension = static_cast<size_t>(emb_dim);
  if (flags.Has("embeddings")) {
    LEAPME_ASSIGN_OR_RETURN(
        auto model, embedding::TextEmbeddingFile::Load(
                        flags.GetString("embeddings", "")));
    return std::unique_ptr<embedding::EmbeddingModel>(
        new embedding::TextEmbeddingFile(std::move(model)));
  }
  std::vector<embedding::SemanticCluster> clusters;
  if (flags.Has("domain")) {
    LEAPME_ASSIGN_OR_RETURN(const data::DomainSpec* domain,
                            DomainByName(flags.GetString("domain", "")));
    clusters = data::DomainClusters(*domain);
  } else {
    // No vocabulary: every word gets a deterministic hashed vector, so
    // identical words still agree. Pass --embeddings or --domain for
    // semantic matching beyond lexical identity.
    std::fprintf(stderr,
                 "note: no --embeddings/--domain given; using hashed "
                 "word vectors only\n");
    clusters.push_back({"placeholder", {"leapme"}});
  }
  embedding::SyntheticModelOptions options;
  options.dimension = dimension;
  options.seed = seed;
  options.oov_policy = embedding::OovPolicy::kHashedVector;
  LEAPME_ASSIGN_OR_RETURN(
      auto model, embedding::SyntheticEmbeddingModel::Build(clusters,
                                                            options));
  return std::unique_ptr<embedding::EmbeddingModel>(
      new embedding::SyntheticEmbeddingModel(std::move(model)));
}

/// Applies --features to `options`. Two syntaxes: one of the nine §V-A
/// origin/kind configs ("both/all", "names/embeddings", ...) or a
/// comma-separated list of registry stage names
/// ("name_embedding,string_distances"), validated against the built-in
/// registry so typos fail here instead of at Fit.
Status ApplyFeatureSelection(const Flags& flags,
                             core::LeapmeOptions* options) {
  const std::string text = flags.GetString("features", "both/all");
  for (const features::FeatureConfig& config :
       features::AllFeatureConfigs()) {
    if (config.ToString() == text) {
      options->feature_config = config;
      return Status::OK();
    }
  }
  const features::FeatureRegistry& registry =
      features::FeatureRegistry::BuiltIn();
  if (text.find('/') == std::string::npos) {
    std::vector<std::string> stages;
    for (const std::string& piece : SplitString(text, ',')) {
      std::string stage(StripAsciiWhitespace(piece));
      if (stage.empty()) continue;
      if (registry.Find(stage) == nullptr) {
        return Status::InvalidArgument(
            "unknown feature stage '" + stage + "' in --features (stages: " +
            registry.StageNames() + ")");
      }
      stages.push_back(std::move(stage));
    }
    if (!stages.empty()) {
      options->feature_stages = std::move(stages);
      return Status::OK();
    }
  }
  return Status::InvalidArgument(
      "unknown --features '" + text +
      "' (expected an origin/kind config such as both/all, "
      "names/embeddings, instances/non-embeddings, or a comma-separated "
      "stage list from: " +
      registry.StageNames() + ")");
}

/// Applies --threads to the global pool. The flag must be a positive
/// integer; when absent the LEAPME_THREADS environment variable or
/// hardware concurrency decides (see DefaultThreadCount).
StatusOr<size_t> ApplyThreadsFlag(const Flags& flags) {
  LEAPME_ASSIGN_OR_RETURN(const int64_t threads,
                          flags.GetIntInRange("threads", 0, 1, 65536));
  if (threads > 0) {
    SetGlobalThreadCount(static_cast<size_t>(threads));
  }
  return static_cast<size_t>(threads);
}

/// The matcher flags shared by evaluate/match/cluster (and, where
/// meaningful, serve), parsed exactly once so every command interprets
/// --seed/--threshold/--blocking/... identically.
struct MatcherFlags {
  core::LeapmeOptions options;
  uint64_t seed = 7;
  double train_fraction = 0.8;
  double negative_ratio = 2.0;
  size_t threads = 0;
  /// --threshold when given; the trained/loaded matcher's (possibly
  /// calibrated) threshold wins otherwise.
  std::optional<double> threshold;
  /// The --blocking candidate-generation spec. The all-pairs default
  /// preserves the pre-pipeline score-everything behavior bit for bit.
  std::string blocking{blocking::kDefaultBlockingSpec};
};

StatusOr<MatcherFlags> ParseMatcherFlags(const Flags& flags) {
  MatcherFlags parsed;
  // --threads beats the LEAPME_THREADS environment variable, which beats
  // hardware concurrency.
  LEAPME_ASSIGN_OR_RETURN(parsed.threads, ApplyThreadsFlag(flags));
  LEAPME_ASSIGN_OR_RETURN(
      const int64_t seed,
      flags.GetIntInRange("seed", 7, 0,
                          std::numeric_limits<int64_t>::max()));
  parsed.seed = static_cast<uint64_t>(seed);
  LEAPME_ASSIGN_OR_RETURN(
      parsed.train_fraction,
      flags.GetDoubleInRange("train-fraction", 0.8, 0.0, 1.0));
  LEAPME_ASSIGN_OR_RETURN(
      parsed.negative_ratio,
      flags.GetDoubleInRange("negative-ratio", 2.0, 0.0, 1e6));
  LEAPME_RETURN_IF_ERROR(ApplyFeatureSelection(flags, &parsed.options));
  if (flags.Has("threshold")) {
    LEAPME_ASSIGN_OR_RETURN(
        const double threshold,
        flags.GetDoubleInRange("threshold", 0.5, 0.0, 1.0));
    parsed.threshold = threshold;
  }
  LEAPME_ASSIGN_OR_RETURN(
      const int64_t max_instances,
      flags.GetIntInRange("max-instances-per-property", 0, 0, 1 << 24));
  parsed.options.pair_features.max_instances_per_property =
      static_cast<size_t>(max_instances);
  parsed.options.threads = parsed.threads;
  parsed.options.decision_threshold = parsed.threshold.value_or(0.5);
  parsed.blocking = flags.GetString("blocking", parsed.blocking);
  return parsed;
}

/// Shared setup of evaluate/match/cluster: load data, build embeddings,
/// then either train LEAPME on a source split or — with --model-in —
/// restore a matcher saved by `evaluate --model-out`. Every session
/// carries the parsed --blocking pipeline; scoring goes candidates-first.
struct TrainedSession {
  data::Dataset dataset{""};
  std::unique_ptr<embedding::EmbeddingModel> model;
  std::unique_ptr<core::LeapmeMatcher> matcher;
  std::unique_ptr<blocking::CandidatePipeline> pipeline;
  MatcherFlags config;
  data::SourceSplit split;
  /// True when the matcher came from --model-in: it has no cached
  /// property features or source split, so callers score candidate
  /// pairs via ScorePairsOn.
  bool from_saved_model = false;
};

StatusOr<TrainedSession> LoadSessionFromModel(const Flags& flags,
                                              MatcherFlags config) {
  TrainedSession session;
  session.from_saved_model = true;
  session.config = std::move(config);
  LEAPME_ASSIGN_OR_RETURN(session.dataset,
                          data::ReadDatasetTsv(flags.GetString("data", "")));
  LEAPME_ASSIGN_OR_RETURN(session.model,
                          BuildEmbeddings(flags, session.config.seed));
  LEAPME_ASSIGN_OR_RETURN(
      core::LeapmeMatcher loaded,
      core::LeapmeMatcher::LoadModel(session.model.get(),
                                     flags.GetString("model-in", "")));
  session.matcher =
      std::make_unique<core::LeapmeMatcher>(std::move(loaded));
  LEAPME_ASSIGN_OR_RETURN(
      session.pipeline,
      blocking::CandidatePipeline::Parse(session.config.blocking,
                                         session.model.get()));
  std::fprintf(stderr, "loaded model %s (input dimension %zu)\n",
               flags.GetString("model-in", "").c_str(),
               session.matcher->input_dimension());
  return session;
}

StatusOr<TrainedSession> TrainFromFlags(const Flags& flags) {
  if (!flags.Has("data")) {
    return Status::InvalidArgument("--data FILE is required");
  }
  LEAPME_ASSIGN_OR_RETURN(MatcherFlags config, ParseMatcherFlags(flags));
  if (flags.Has("model-in")) {
    if (flags.Has("model-out")) {
      return Status::InvalidArgument(
          "--model-in and --model-out are mutually exclusive");
    }
    return LoadSessionFromModel(flags, std::move(config));
  }
  TrainedSession session;
  session.config = std::move(config);
  LEAPME_ASSIGN_OR_RETURN(session.dataset,
                          data::ReadDatasetTsv(flags.GetString("data", "")));
  LEAPME_ASSIGN_OR_RETURN(session.model,
                          BuildEmbeddings(flags, session.config.seed));

  Rng rng(session.config.seed);
  session.split = data::SplitSources(session.dataset,
                                     session.config.train_fraction, rng);
  LEAPME_ASSIGN_OR_RETURN(
      std::vector<data::LabeledPair> training,
      data::BuildTrainingPairs(session.dataset, session.split.train_sources,
                               session.config.negative_ratio, rng));

  session.matcher = std::make_unique<core::LeapmeMatcher>(
      session.model.get(), session.config.options);
  LEAPME_RETURN_IF_ERROR(session.matcher->Fit(session.dataset, training));
  LEAPME_ASSIGN_OR_RETURN(
      session.pipeline,
      blocking::CandidatePipeline::Parse(session.config.blocking,
                                         session.model.get()));
  std::fprintf(stderr,
               "trained on %zu pairs from %zu sources (%zu properties)\n",
               training.size(), session.split.train_sources.size(),
               session.dataset.property_count());

  if (flags.Has("model-out")) {
    LEAPME_RETURN_IF_ERROR(
        session.matcher->SaveModel(flags.GetString("model-out", "")));
    std::fprintf(stderr, "model saved to %s\n",
                 flags.GetString("model-out", "").c_str());
  }
  return session;
}

/// The decision threshold of a session: --threshold when given, else the
/// matcher's (possibly calibrated or restored) threshold.
double SessionThreshold(const TrainedSession& session) {
  return session.config.threshold.value_or(
      session.matcher->decision_threshold());
}

/// Candidate pairs of the session's dataset under its --blocking
/// pipeline. With `restrict_to_test` the list keeps only pairs touching
/// at least one held-out source — under all-pairs this reproduces
/// data::BuildTestPairs' pair list (same ascending enumeration) exactly.
StatusOr<std::vector<data::PropertyPair>> SessionCandidates(
    TrainedSession& session, bool restrict_to_test) {
  LEAPME_ASSIGN_OR_RETURN(std::vector<data::PropertyPair> pairs,
                          session.pipeline->Candidates(session.dataset));
  const size_t blocked = pairs.size();
  if (restrict_to_test) {
    std::vector<bool> is_train(session.dataset.source_count(), false);
    for (data::SourceId source : session.split.train_sources) {
      is_train[source] = true;
    }
    std::erase_if(pairs, [&](const data::PropertyPair& pair) {
      return is_train[session.dataset.property(pair.a).source] &&
             is_train[session.dataset.property(pair.b).source];
    });
  }
  std::fprintf(stderr, "blocking %s: %zu candidate pairs%s\n",
               session.pipeline->spec().c_str(), blocked,
               restrict_to_test
                   ? StrFormat(" (%zu in held-out sources)", pairs.size())
                         .c_str()
                   : "");
  return pairs;
}

/// Scores the session's pairs: the trained path uses the cached property
/// features (ScorePairs); the --model-in path recomputes them for the
/// dataset at hand (ScorePairsOn). Both produce bit-identical scores for
/// the same model and properties.
StatusOr<std::vector<double>> ScoreSessionPairs(
    const TrainedSession& session,
    const std::vector<data::PropertyPair>& pairs) {
  if (session.from_saved_model) {
    return session.matcher->ScorePairsOn(session.dataset, pairs);
  }
  return session.matcher->ScorePairs(pairs);
}

const std::vector<std::string>& EvaluateFlags() {
  static const auto* kFlags = new std::vector<std::string>{
      "data",        "train-fraction", "seed",      "embeddings",
      "domain",      "emb-dim",        "features",  "model-out",
      "model-in",    "threshold",      "negative-ratio",
      "limit",       "threads",        "max-instances-per-property",
      "blocking"};
  return *kFlags;
}

}  // namespace

// Matching-pair count by reference grouping: C(n, 2) per reference group
// minus the same-source pairs. Equivalent to Dataset::CountMatchingPairs
// but linear in properties, which is what makes it usable on the
// million-property scaled catalogs.
size_t CountMatchingPairsGrouped(const data::Dataset& dataset) {
  std::unordered_map<std::string, std::unordered_map<data::SourceId, size_t>>
      groups;
  for (const data::PropertyRecord& record : dataset.properties()) {
    if (record.reference.empty()) continue;
    ++groups[record.reference][record.source];
  }
  size_t count = 0;
  for (const auto& [reference, by_source] : groups) {
    size_t total = 0;
    size_t same_source = 0;
    for (const auto& [source, n] : by_source) {
      total += n;
      same_source += n * (n - 1) / 2;
    }
    count += total * (total - 1) / 2 - same_source;
  }
  return count;
}

Status RunGenerate(const Flags& flags) {
  LEAPME_RETURN_IF_ERROR(flags.CheckAllowed(
      {"domain", "sources", "entities", "seed", "out",
       "scale-properties"}));
  if (flags.Has("scale-properties")) {
    data::ScaledCatalogOptions options;
    LEAPME_ASSIGN_OR_RETURN(
        const int64_t target,
        flags.GetIntInRange("scale-properties", 1000000, 1, 100000000));
    options.target_properties = static_cast<size_t>(target);
    LEAPME_ASSIGN_OR_RETURN(const int64_t sources,
                            flags.GetIntInRange("sources", 400, 2, 1 << 20));
    options.num_sources = static_cast<size_t>(sources);
    options.sources_per_category =
        std::min<size_t>(options.sources_per_category, options.num_sources);
    LEAPME_ASSIGN_OR_RETURN(const int64_t entities,
                            flags.GetIntInRange("entities", 12, 1, 1 << 16));
    options.entities_per_source = static_cast<size_t>(entities);
    LEAPME_ASSIGN_OR_RETURN(
        const int64_t seed,
        flags.GetIntInRange("seed", 42, 0,
                            std::numeric_limits<int64_t>::max()));
    options.seed = static_cast<uint64_t>(seed);
    LEAPME_ASSIGN_OR_RETURN(data::Dataset dataset,
                            data::GenerateScaledCatalog(options));
    std::string out = flags.GetString("out", "scaled.tsv");
    LEAPME_RETURN_IF_ERROR(data::WriteDatasetTsv(dataset, out));
    std::printf("wrote %s: %zu sources, %zu properties, %zu instances, "
                "%zu matching pairs\n",
                out.c_str(), dataset.source_count(),
                dataset.property_count(), dataset.instance_count(),
                CountMatchingPairsGrouped(dataset));
    return Status::OK();
  }
  LEAPME_ASSIGN_OR_RETURN(
      const data::DomainSpec* domain,
      DomainByName(flags.GetString("domain", "cameras")));
  data::GeneratorOptions options;
  LEAPME_ASSIGN_OR_RETURN(const int64_t sources,
                          flags.GetIntInRange("sources", 8, 1, 1 << 20));
  options.num_sources = static_cast<size_t>(sources);
  LEAPME_ASSIGN_OR_RETURN(const int64_t entities,
                          flags.GetIntInRange("entities", 50, 1, 1 << 24));
  options.min_entities_per_source = static_cast<size_t>(entities);
  options.max_entities_per_source = static_cast<size_t>(entities);
  LEAPME_ASSIGN_OR_RETURN(
      const int64_t seed,
      flags.GetIntInRange("seed", 42, 0,
                          std::numeric_limits<int64_t>::max()));
  options.seed = static_cast<uint64_t>(seed);
  LEAPME_ASSIGN_OR_RETURN(data::Dataset dataset,
                          data::GenerateCatalog(*domain, options));
  std::string out = flags.GetString("out", domain->name + ".tsv");
  LEAPME_RETURN_IF_ERROR(data::WriteDatasetTsv(dataset, out));
  std::printf("wrote %s: %zu sources, %zu properties, %zu instances, "
              "%zu matching pairs\n",
              out.c_str(), dataset.source_count(), dataset.property_count(),
              dataset.instance_count(), dataset.CountMatchingPairs());
  return Status::OK();
}

Status RunStats(const Flags& flags) {
  LEAPME_RETURN_IF_ERROR(flags.CheckAllowed({"data"}));
  if (!flags.Has("data")) {
    return Status::InvalidArgument("--data FILE is required");
  }
  LEAPME_ASSIGN_OR_RETURN(data::Dataset dataset,
                          data::ReadDatasetTsv(flags.GetString("data", "")));
  std::printf("%s", data::ComputeStatistics(dataset).ToString().c_str());
  return Status::OK();
}

Status RunEvaluate(const Flags& flags) {
  LEAPME_RETURN_IF_ERROR(flags.CheckAllowed(EvaluateFlags()));
  if (flags.Has("model-in")) {
    // Evaluation needs held-out sources from a train/test split, which a
    // saved model does not carry.
    return Status::InvalidArgument(
        "evaluate retrains from --data; --model-in is for match/cluster/"
        "serve");
  }
  LEAPME_ASSIGN_OR_RETURN(TrainedSession session, TrainFromFlags(flags));

  std::vector<data::LabeledPair> test_pairs =
      data::BuildTestPairs(session.dataset, session.split.train_sources);
  std::vector<data::PropertyPair> pairs;
  std::vector<int32_t> labels;
  for (const auto& labeled : test_pairs) {
    pairs.push_back(labeled.pair);
    labels.push_back(labeled.label);
  }
  // Two-step pipeline: only blocked candidates get scored; a test pair
  // the blocker dropped is predicted non-match with score 0. Under the
  // all-pairs default every test pair is a candidate, reproducing the
  // score-everything evaluation bit for bit.
  LEAPME_ASSIGN_OR_RETURN(
      std::vector<data::PropertyPair> candidates,
      SessionCandidates(session, /*restrict_to_test=*/true));
  const auto pair_less = [](const data::PropertyPair& x,
                            const data::PropertyPair& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  };
  const auto is_candidate = [&](const data::PropertyPair& pair) {
    return std::binary_search(candidates.begin(), candidates.end(), pair,
                              pair_less);
  };
  std::vector<data::PropertyPair> to_score;
  for (const data::PropertyPair& pair : pairs) {
    if (is_candidate(pair)) to_score.push_back(pair);
  }
  LEAPME_ASSIGN_OR_RETURN(std::vector<double> candidate_scores,
                          session.matcher->ScorePairs(to_score));
  std::vector<double> scores(pairs.size(), 0.0);
  size_t next_scored = 0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (is_candidate(pairs[i])) scores[i] = candidate_scores[next_scored++];
  }
  std::vector<int32_t> predictions(scores.size());
  const double threshold = session.matcher->decision_threshold();
  for (size_t i = 0; i < scores.size(); ++i) {
    predictions[i] = scores[i] >= threshold ? 1 : 0;
  }
  ml::MatchQuality quality = ml::ComputeQuality(predictions, labels);
  ml::PrPoint best = ml::BestF1Point(scores, labels);
  std::printf("test pairs: %zu (%zu sources held out)\n", pairs.size(),
              session.split.test_sources.size());
  std::printf("at threshold %.2f:  %s\n", threshold,
              quality.ToString().c_str());
  std::printf("best-F1 operating point: threshold %.2f -> P=%.2f R=%.2f "
              "F1=%.2f\n",
              best.threshold, best.precision, best.recall, best.f1);
  std::printf("average precision: %.3f\n",
              ml::AveragePrecision(scores, labels));
  return Status::OK();
}

Status RunMatch(const Flags& flags) {
  LEAPME_RETURN_IF_ERROR(flags.CheckAllowed(EvaluateFlags()));
  LEAPME_ASSIGN_OR_RETURN(TrainedSession session, TrainFromFlags(flags));

  // Two-step pipeline: the --blocking blocker picks the candidates, the
  // matcher scores only those. The trained path reports matches among
  // the held-out sources; a saved model has no split, so its candidates
  // span all of --data.
  LEAPME_ASSIGN_OR_RETURN(
      std::vector<data::PropertyPair> pairs,
      SessionCandidates(session,
                        /*restrict_to_test=*/!session.from_saved_model));
  LEAPME_ASSIGN_OR_RETURN(std::vector<double> scores,
                          ScoreSessionPairs(session, pairs));

  // Sort matches by score, print the strongest.
  std::vector<size_t> order;
  const double threshold = SessionThreshold(session);
  for (size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] >= threshold) order.push_back(i);
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  LEAPME_ASSIGN_OR_RETURN(
      const int64_t limit_flag,
      flags.GetIntInRange("limit", 25, 0,
                          std::numeric_limits<int64_t>::max()));
  auto limit = static_cast<size_t>(limit_flag);
  std::printf("%zu matches at threshold %.2f; strongest %zu:\n",
              order.size(), threshold, std::min(limit, order.size()));
  for (size_t rank = 0; rank < order.size() && rank < limit; ++rank) {
    size_t i = order[rank];
    const auto& pa = session.dataset.property(pairs[i].a);
    const auto& pb = session.dataset.property(pairs[i].b);
    std::printf("  %.3f  %s/%s ~ %s/%s\n", scores[i],
                session.dataset.source_name(pa.source).c_str(),
                pa.name.c_str(),
                session.dataset.source_name(pb.source).c_str(),
                pb.name.c_str());
  }
  return Status::OK();
}

Status RunCluster(const Flags& flags) {
  LEAPME_RETURN_IF_ERROR(flags.CheckAllowed(EvaluateFlags()));
  LEAPME_ASSIGN_OR_RETURN(TrainedSession session, TrainFromFlags(flags));

  const double threshold = SessionThreshold(session);
  // Score the --blocking candidate pairs (all cross-source pairs under
  // the all-pairs default; ScorePairs for the trained path, ScorePairsOn
  // for --model-in) and keep the edges above threshold — the same Sim
  // graph BuildSimilarityGraph produces.
  LEAPME_ASSIGN_OR_RETURN(
      const std::vector<data::PropertyPair> pairs,
      SessionCandidates(session, /*restrict_to_test=*/false));
  LEAPME_ASSIGN_OR_RETURN(std::vector<double> scores,
                          ScoreSessionPairs(session, pairs));
  graph::SimilarityGraph similarity(session.dataset.property_count());
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (scores[i] >= threshold) {
      similarity.AddEdge(pairs[i].a, pairs[i].b, scores[i]);
    }
  }
  graph::Clusters clusters = graph::StarClusters(similarity, threshold);
  graph::ClusterQuality quality =
      graph::EvaluateClusters(clusters, session.dataset);
  std::printf("similarity graph: %zu edges; %zu non-singleton clusters "
              "(pair-level P=%.2f R=%.2f F1=%.2f)\n",
              similarity.edge_count(), quality.non_singleton_clusters,
              quality.precision, quality.recall, quality.f1);
  for (const auto& cluster : clusters) {
    if (cluster.size() < 2) continue;
    std::printf("  [");
    for (size_t i = 0; i < cluster.size(); ++i) {
      std::printf("%s'%s'", i == 0 ? "" : ", ",
                  session.dataset.property(cluster[i]).name.c_str());
    }
    std::printf("]\n");
  }
  return Status::OK();
}

Status RunServe(const Flags& flags) {
  LEAPME_RETURN_IF_ERROR(flags.CheckAllowed(
      {"model", "port", "host", "max-batch", "batch-window-us", "emb-cache",
       "prop-cache", "threads", "embeddings", "domain", "emb-dim", "seed",
       "deadline-ms", "max-connections", "max-queue", "index-data",
       "blocking", "io-backend", "event-loop-threads", "cache-shards",
       "model-watch", "canary-threshold", "rollback-error-rate"}));
  if (!flags.Has("model")) {
    return Status::InvalidArgument("--model FILE is required");
  }
  if (flags.Has("blocking") && !flags.Has("index-data")) {
    return Status::InvalidArgument(
        "--blocking for serve requires --index-data FILE (the catalog the "
        "blocker indexes)");
  }
  LEAPME_RETURN_IF_ERROR(ApplyThreadsFlag(flags).status());
  LEAPME_ASSIGN_OR_RETURN(
      const int64_t seed,
      flags.GetIntInRange("seed", 7, 0,
                          std::numeric_limits<int64_t>::max()));
  // Port 0 binds an ephemeral port; the actual port is printed on stderr.
  LEAPME_ASSIGN_OR_RETURN(const int64_t port,
                          flags.GetIntInRange("port", 7207, 0, 65535));
  LEAPME_ASSIGN_OR_RETURN(const int64_t max_batch,
                          flags.GetIntInRange("max-batch", 256, 1, 65536));
  LEAPME_ASSIGN_OR_RETURN(
      const int64_t batch_window_us,
      flags.GetIntInRange("batch-window-us", 200, 0, 1000000));
  LEAPME_ASSIGN_OR_RETURN(const int64_t emb_cache,
                          flags.GetIntInRange("emb-cache", 65536, 1, 1 << 28));
  LEAPME_ASSIGN_OR_RETURN(const int64_t prop_cache,
                          flags.GetIntInRange("prop-cache", 4096, 1, 1 << 28));
  // 0 = take the partition count from LEAPME_CACHE_SHARDS (default 16);
  // both caches share the setting, each clamped to its own capacity/16.
  LEAPME_ASSIGN_OR_RETURN(const int64_t cache_shards,
                          flags.GetIntInRange("cache-shards", 0, 0, 1024));
  LEAPME_ASSIGN_OR_RETURN(
      const int64_t deadline_ms,
      flags.GetIntInRange("deadline-ms", 0, 0, 3600000));
  LEAPME_ASSIGN_OR_RETURN(
      const int64_t max_connections,
      flags.GetIntInRange("max-connections", 0, 0, 1 << 20));
  // The CLI bounds the admission queue by default (the library leaves it
  // unbounded for embedders): a serve process should shed, not swell.
  LEAPME_ASSIGN_OR_RETURN(
      const int64_t max_queue,
      flags.GetIntInRange("max-queue", 65536, 0, 1 << 28));
  // Hot-reload controls: mtime polling interval, canary strictness, and
  // the post-swap rollback trip (DESIGN.md §18).
  LEAPME_ASSIGN_OR_RETURN(
      const int64_t model_watch_ms,
      flags.GetIntInRange("model-watch", 0, 0, 3600000));
  LEAPME_ASSIGN_OR_RETURN(
      const double canary_threshold,
      flags.GetDoubleInRange("canary-threshold", 0.5, 0.0, 1.0));
  LEAPME_ASSIGN_OR_RETURN(
      const double rollback_error_rate,
      flags.GetDoubleInRange("rollback-error-rate", 0.0, 0.0, 1.0));

  // Every generation (startup and each hot reload) gets its own embedding
  // stack: the base model, its cache, and the matcher live and die
  // together, so a swapped-out model cannot serve vectors through a
  // successor's cache.
  const serve::ModelRegistry::Loader loader =
      [&flags, seed, emb_cache, cache_shards](const std::string& path)
      -> StatusOr<serve::ModelGeneration::Resources> {
    serve::ModelGeneration::Resources resources;
    LEAPME_ASSIGN_OR_RETURN(
        resources.base_model,
        BuildEmbeddings(flags, static_cast<uint64_t>(seed)));
    resources.embedding_cache =
        std::make_unique<embedding::CachingEmbeddingModel>(
            resources.base_model.get(), static_cast<size_t>(emb_cache),
            static_cast<size_t>(cache_shards));
    LEAPME_ASSIGN_OR_RETURN(
        core::LeapmeMatcher matcher,
        core::LeapmeMatcher::LoadModel(resources.embedding_cache.get(),
                                       path));
    resources.matcher =
        std::make_unique<core::LeapmeMatcher>(std::move(matcher));
    return resources;
  };

  serve::RegistryOptions registry_options;
  registry_options.property_cache_capacity = static_cast<size_t>(prop_cache);
  registry_options.property_cache_shards = static_cast<size_t>(cache_shards);
  registry_options.canary_threshold = canary_threshold;
  registry_options.rollback_error_rate = rollback_error_rate;
  serve::ModelRegistry registry(loader, registry_options);
  const std::string model_path = flags.GetString("model", "");
  LEAPME_RETURN_IF_ERROR(registry.Init(model_path));
  {
    const auto generation = registry.Acquire();
    const serve::ModelInfo& info = generation->info();
    std::fprintf(stderr,
                 "loaded model %s (input dimension %zu, schema fingerprint "
                 "%s, format v%d, mtime %lld)\n",
                 model_path.c_str(),
                 generation->matcher().input_dimension(),
                 info.fingerprint.c_str(), info.format_version,
                 static_cast<long long>(info.file_mtime));
  }

  // Catalog-index mode: load the catalog and remember the blocking spec
  // in the registry, which indexes it for the startup generation and
  // re-indexes on every admitted reload. The catalog outlives the server
  // (this scope holds it through ServeUntilShutdown).
  data::Dataset catalog{""};
  if (flags.Has("index-data")) {
    LEAPME_ASSIGN_OR_RETURN(
        catalog, data::ReadDatasetTsv(flags.GetString("index-data", "")));
    const std::string spec = flags.GetString(
        "blocking", std::string(blocking::kDefaultIndexBlockingSpec));
    LEAPME_RETURN_IF_ERROR(registry.AttachCatalog(&catalog, spec));
    std::fprintf(stderr, "catalog index: %zu properties via %s\n",
                 catalog.property_count(), spec.c_str());
  }

  serve::ServiceOptions service_options;
  service_options.max_batch = static_cast<size_t>(max_batch);
  service_options.batch_window_us = static_cast<size_t>(batch_window_us);
  service_options.property_cache_capacity = static_cast<size_t>(prop_cache);
  service_options.property_cache_shards = static_cast<size_t>(cache_shards);
  service_options.max_queue_pairs = static_cast<size_t>(max_queue);
  LEAPME_ASSIGN_OR_RETURN(
      std::unique_ptr<serve::MatcherService> service,
      serve::MatcherService::Create(&registry, service_options));

  serve::ServerOptions server_options;
  server_options.host = flags.GetString("host", "127.0.0.1");
  server_options.port = static_cast<int>(port);
  server_options.deadline_ms = deadline_ms;
  server_options.max_connections = static_cast<size_t>(max_connections);
  if (flags.Has("io-backend")) {
    LEAPME_ASSIGN_OR_RETURN(
        server_options.io_backend,
        serve::ParseIoBackend(flags.GetString("io-backend", "epoll")));
  }
  LEAPME_ASSIGN_OR_RETURN(
      const int64_t event_loop_threads,
      flags.GetIntInRange("event-loop-threads",
                          static_cast<int64_t>(
                              server_options.event_loop_threads),
                          1, 64));
  server_options.event_loop_threads =
      static_cast<size_t>(event_loop_threads);
  serve::TcpServer server(service.get(), server_options);
  LEAPME_RETURN_IF_ERROR(server.Start());
  std::fprintf(stderr,
               "leapme serve listening on %s:%d (backend %s, max-batch "
               "%lld, window %lld us); Ctrl-C to stop, SIGHUP to reload\n",
               server_options.host.c_str(), server.port(),
               serve::IoBackendName(server_options.io_backend),
               static_cast<long long>(max_batch),
               static_cast<long long>(batch_window_us));

  // Reload triggers outside the protocol: SIGHUP and --model-watch mtime
  // polling, both serviced from the parked ServeUntilShutdown thread.
  InstallReloadSignalHandler();
  int64_t watched_mtime = serve::FileMtimeSeconds(model_path);
  auto last_poll = std::chrono::steady_clock::now();
  const auto run_reload = [&registry](const char* trigger) {
    const StatusOr<serve::ReloadOutcome> outcome = registry.Reload();
    if (outcome.ok()) {
      std::fprintf(stderr,
                   "reload (%s): now serving model version %llu "
                   "(fingerprint %s, canary divergence %.6f over %zu "
                   "pairs)\n",
                   trigger,
                   static_cast<unsigned long long>(outcome->info.version),
                   outcome->info.fingerprint.c_str(),
                   outcome->canary_divergence, outcome->canary_pairs);
    } else {
      std::fprintf(stderr, "reload (%s) rejected: %s\n", trigger,
                   outcome.status().ToString().c_str());
    }
  };
  return server.ServeUntilShutdown([&] {
    if (ConsumeReloadRequest()) {
      run_reload("SIGHUP");
    }
    if (model_watch_ms > 0) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_poll >= std::chrono::milliseconds(model_watch_ms)) {
        last_poll = now;
        const int64_t mtime = serve::FileMtimeSeconds(model_path);
        // Record the new mtime before attempting the reload: a bad file
        // is rejected once, not once per poll until it is fixed.
        if (mtime != 0 && mtime != watched_mtime) {
          watched_mtime = mtime;
          run_reload("model-watch");
        }
      }
    }
  });
}

int RunCli(int argc, const char* const* argv) {
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n%s", flags.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  Status status;
  if (flags->command() == "generate") {
    status = RunGenerate(*flags);
  } else if (flags->command() == "stats") {
    status = RunStats(*flags);
  } else if (flags->command() == "evaluate") {
    status = RunEvaluate(*flags);
  } else if (flags->command() == "match") {
    status = RunMatch(*flags);
  } else if (flags->command() == "cluster") {
    status = RunCluster(*flags);
  } else if (flags->command() == "serve") {
    status = RunServe(*flags);
  } else {
    std::fprintf(stderr, "%s", kUsage);
    return flags->command().empty() ? 0 : 2;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace leapme::cli
