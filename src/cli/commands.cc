#include "cli/commands.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/parallel.h"
#include "common/string_util.h"
#include "core/leapme.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "data/statistics.h"
#include "data/tsv_io.h"
#include "embedding/synthetic_model.h"
#include "embedding/text_embedding_file.h"
#include "graph/similarity_graph.h"
#include "ml/metrics.h"

namespace leapme::cli {

namespace {

constexpr const char* kUsage =
    "usage: leapme <command> [--flag value ...]\n"
    "\n"
    "commands:\n"
    "  generate   write a synthetic multi-source product catalog as TSV\n"
    "             --domain cameras|headphones|phones|tvs --sources N\n"
    "             --entities N --seed N --out FILE\n"
    "  stats      print dataset statistics           --data FILE\n"
    "  evaluate   train on a fraction of sources, report P/R/F1 on the rest\n"
    "             --data FILE [--train-fraction 0.8] [--seed 7]\n"
    "             [--embeddings GLOVE_FILE | --domain NAME] [--emb-dim 64]\n"
    "             [--features origin/kinds] [--model-out FILE]\n"
    "             [--threads N] (0 = LEAPME_THREADS env or all cores;\n"
    "             results are identical at any thread count)\n"
    "  match      print discovered matches among the held-out sources\n"
    "             (evaluate flags plus [--threshold 0.5] [--limit 25])\n"
    "  cluster    train, build the similarity graph over all pairs and\n"
    "             print star clusters (evaluate flags plus [--threshold])\n";

StatusOr<const data::DomainSpec*> DomainByName(const std::string& name) {
  for (const data::DomainSpec* domain : data::AllDomains()) {
    if (domain->name == name) return domain;
  }
  return Status::InvalidArgument("unknown domain '" + name +
                                 "' (cameras|headphones|phones|tvs)");
}

/// Builds the embedding model per the flags: a GloVe-format file, a
/// domain-specific synthetic space, or a hashed-vector-only fallback.
StatusOr<std::unique_ptr<embedding::EmbeddingModel>> BuildEmbeddings(
    const Flags& flags) {
  const auto dimension =
      static_cast<size_t>(flags.GetInt("emb-dim", 64));
  if (flags.Has("embeddings")) {
    LEAPME_ASSIGN_OR_RETURN(
        auto model, embedding::TextEmbeddingFile::Load(
                        flags.GetString("embeddings", "")));
    return std::unique_ptr<embedding::EmbeddingModel>(
        new embedding::TextEmbeddingFile(std::move(model)));
  }
  std::vector<embedding::SemanticCluster> clusters;
  if (flags.Has("domain")) {
    LEAPME_ASSIGN_OR_RETURN(const data::DomainSpec* domain,
                            DomainByName(flags.GetString("domain", "")));
    clusters = data::DomainClusters(*domain);
  } else {
    // No vocabulary: every word gets a deterministic hashed vector, so
    // identical words still agree. Pass --embeddings or --domain for
    // semantic matching beyond lexical identity.
    std::fprintf(stderr,
                 "note: no --embeddings/--domain given; using hashed "
                 "word vectors only\n");
    clusters.push_back({"placeholder", {"leapme"}});
  }
  embedding::SyntheticModelOptions options;
  options.dimension = dimension;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  options.oov_policy = embedding::OovPolicy::kHashedVector;
  LEAPME_ASSIGN_OR_RETURN(
      auto model, embedding::SyntheticEmbeddingModel::Build(clusters,
                                                            options));
  return std::unique_ptr<embedding::EmbeddingModel>(
      new embedding::SyntheticEmbeddingModel(std::move(model)));
}

StatusOr<features::FeatureConfig> ParseFeatureConfig(const Flags& flags) {
  std::string text = flags.GetString("features", "both/all");
  for (const features::FeatureConfig& config :
       features::AllFeatureConfigs()) {
    if (config.ToString() == text) return config;
  }
  return Status::InvalidArgument(
      "unknown --features '" + text +
      "' (expected e.g. both/all, names/embeddings, "
      "instances/non-embeddings)");
}

/// Shared setup of evaluate/match/cluster: load data, build embeddings,
/// split sources, train LEAPME.
struct TrainedSession {
  data::Dataset dataset{""};
  std::unique_ptr<embedding::EmbeddingModel> model;
  std::unique_ptr<core::LeapmeMatcher> matcher;
  data::SourceSplit split;
};

StatusOr<TrainedSession> TrainFromFlags(const Flags& flags) {
  if (!flags.Has("data")) {
    return Status::InvalidArgument("--data FILE is required");
  }
  TrainedSession session;
  // --threads beats the LEAPME_THREADS environment variable, which beats
  // hardware concurrency (0 keeps whatever the environment decided).
  const auto threads = static_cast<size_t>(
      std::max<int64_t>(0, flags.GetInt("threads", 0)));
  if (threads > 0) {
    SetGlobalThreadCount(threads);
  }
  LEAPME_ASSIGN_OR_RETURN(session.dataset,
                          data::ReadDatasetTsv(flags.GetString("data", "")));
  LEAPME_ASSIGN_OR_RETURN(session.model, BuildEmbeddings(flags));

  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 7)));
  session.split = data::SplitSources(
      session.dataset, flags.GetDouble("train-fraction", 0.8), rng);
  LEAPME_ASSIGN_OR_RETURN(
      std::vector<data::LabeledPair> training,
      data::BuildTrainingPairs(session.dataset, session.split.train_sources,
                               flags.GetDouble("negative-ratio", 2.0), rng));

  core::LeapmeOptions options;
  LEAPME_ASSIGN_OR_RETURN(options.feature_config, ParseFeatureConfig(flags));
  options.decision_threshold = flags.GetDouble("threshold", 0.5);
  options.threads = threads;
  session.matcher = std::make_unique<core::LeapmeMatcher>(
      session.model.get(), options);
  LEAPME_RETURN_IF_ERROR(session.matcher->Fit(session.dataset, training));
  std::fprintf(stderr,
               "trained on %zu pairs from %zu sources (%zu properties)\n",
               training.size(), session.split.train_sources.size(),
               session.dataset.property_count());

  if (flags.Has("model-out")) {
    LEAPME_RETURN_IF_ERROR(
        session.matcher->SaveModel(flags.GetString("model-out", "")));
    std::fprintf(stderr, "model saved to %s\n",
                 flags.GetString("model-out", "").c_str());
  }
  return session;
}

const std::vector<std::string>& EvaluateFlags() {
  static const auto* kFlags = new std::vector<std::string>{
      "data",        "train-fraction", "seed",      "embeddings",
      "domain",      "emb-dim",        "features",  "model-out",
      "threshold",   "negative-ratio", "limit",     "threads"};
  return *kFlags;
}

}  // namespace

Status RunGenerate(const Flags& flags) {
  LEAPME_RETURN_IF_ERROR(flags.CheckAllowed(
      {"domain", "sources", "entities", "seed", "out"}));
  LEAPME_ASSIGN_OR_RETURN(
      const data::DomainSpec* domain,
      DomainByName(flags.GetString("domain", "cameras")));
  data::GeneratorOptions options;
  options.num_sources = static_cast<size_t>(flags.GetInt("sources", 8));
  auto entities = static_cast<size_t>(flags.GetInt("entities", 50));
  options.min_entities_per_source = entities;
  options.max_entities_per_source = entities;
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  LEAPME_ASSIGN_OR_RETURN(data::Dataset dataset,
                          data::GenerateCatalog(*domain, options));
  std::string out = flags.GetString("out", domain->name + ".tsv");
  LEAPME_RETURN_IF_ERROR(data::WriteDatasetTsv(dataset, out));
  std::printf("wrote %s: %zu sources, %zu properties, %zu instances, "
              "%zu matching pairs\n",
              out.c_str(), dataset.source_count(), dataset.property_count(),
              dataset.instance_count(), dataset.CountMatchingPairs());
  return Status::OK();
}

Status RunStats(const Flags& flags) {
  LEAPME_RETURN_IF_ERROR(flags.CheckAllowed({"data"}));
  if (!flags.Has("data")) {
    return Status::InvalidArgument("--data FILE is required");
  }
  LEAPME_ASSIGN_OR_RETURN(data::Dataset dataset,
                          data::ReadDatasetTsv(flags.GetString("data", "")));
  std::printf("%s", data::ComputeStatistics(dataset).ToString().c_str());
  return Status::OK();
}

Status RunEvaluate(const Flags& flags) {
  LEAPME_RETURN_IF_ERROR(flags.CheckAllowed(EvaluateFlags()));
  LEAPME_ASSIGN_OR_RETURN(TrainedSession session, TrainFromFlags(flags));

  std::vector<data::LabeledPair> test_pairs =
      data::BuildTestPairs(session.dataset, session.split.train_sources);
  std::vector<data::PropertyPair> pairs;
  std::vector<int32_t> labels;
  for (const auto& labeled : test_pairs) {
    pairs.push_back(labeled.pair);
    labels.push_back(labeled.label);
  }
  LEAPME_ASSIGN_OR_RETURN(std::vector<double> scores,
                          session.matcher->ScorePairs(pairs));
  std::vector<int32_t> predictions(scores.size());
  const double threshold = session.matcher->options().decision_threshold;
  for (size_t i = 0; i < scores.size(); ++i) {
    predictions[i] = scores[i] >= threshold ? 1 : 0;
  }
  ml::MatchQuality quality = ml::ComputeQuality(predictions, labels);
  ml::PrPoint best = ml::BestF1Point(scores, labels);
  std::printf("test pairs: %zu (%zu sources held out)\n", pairs.size(),
              session.split.test_sources.size());
  std::printf("at threshold %.2f:  %s\n", threshold,
              quality.ToString().c_str());
  std::printf("best-F1 operating point: threshold %.2f -> P=%.2f R=%.2f "
              "F1=%.2f\n",
              best.threshold, best.precision, best.recall, best.f1);
  std::printf("average precision: %.3f\n",
              ml::AveragePrecision(scores, labels));
  return Status::OK();
}

Status RunMatch(const Flags& flags) {
  LEAPME_RETURN_IF_ERROR(flags.CheckAllowed(EvaluateFlags()));
  LEAPME_ASSIGN_OR_RETURN(TrainedSession session, TrainFromFlags(flags));

  std::vector<data::LabeledPair> test_pairs =
      data::BuildTestPairs(session.dataset, session.split.train_sources);
  std::vector<data::PropertyPair> pairs;
  for (const auto& labeled : test_pairs) {
    pairs.push_back(labeled.pair);
  }
  LEAPME_ASSIGN_OR_RETURN(std::vector<double> scores,
                          session.matcher->ScorePairs(pairs));

  // Sort matches by score, print the strongest.
  std::vector<size_t> order;
  const double threshold = session.matcher->options().decision_threshold;
  for (size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] >= threshold) order.push_back(i);
  }
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return scores[a] > scores[b]; });
  auto limit = static_cast<size_t>(flags.GetInt("limit", 25));
  std::printf("%zu matches at threshold %.2f; strongest %zu:\n",
              order.size(), threshold, std::min(limit, order.size()));
  for (size_t rank = 0; rank < order.size() && rank < limit; ++rank) {
    size_t i = order[rank];
    const auto& pa = session.dataset.property(pairs[i].a);
    const auto& pb = session.dataset.property(pairs[i].b);
    std::printf("  %.3f  %s/%s ~ %s/%s\n", scores[i],
                session.dataset.source_name(pa.source).c_str(),
                pa.name.c_str(),
                session.dataset.source_name(pb.source).c_str(),
                pb.name.c_str());
  }
  return Status::OK();
}

Status RunCluster(const Flags& flags) {
  LEAPME_RETURN_IF_ERROR(flags.CheckAllowed(EvaluateFlags()));
  LEAPME_ASSIGN_OR_RETURN(TrainedSession session, TrainFromFlags(flags));

  LEAPME_ASSIGN_OR_RETURN(
      graph::SimilarityGraph similarity,
      session.matcher->BuildSimilarityGraph(
          session.dataset.AllCrossSourcePairs()));
  const double threshold = session.matcher->options().decision_threshold;
  graph::Clusters clusters = graph::StarClusters(similarity, threshold);
  graph::ClusterQuality quality =
      graph::EvaluateClusters(clusters, session.dataset);
  std::printf("similarity graph: %zu edges; %zu non-singleton clusters "
              "(pair-level P=%.2f R=%.2f F1=%.2f)\n",
              similarity.edge_count(), quality.non_singleton_clusters,
              quality.precision, quality.recall, quality.f1);
  for (const auto& cluster : clusters) {
    if (cluster.size() < 2) continue;
    std::printf("  [");
    for (size_t i = 0; i < cluster.size(); ++i) {
      std::printf("%s'%s'", i == 0 ? "" : ", ",
                  session.dataset.property(cluster[i]).name.c_str());
    }
    std::printf("]\n");
  }
  return Status::OK();
}

int RunCli(int argc, const char* const* argv) {
  auto flags = Flags::Parse(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "%s\n%s", flags.status().ToString().c_str(),
                 kUsage);
    return 2;
  }
  Status status;
  if (flags->command() == "generate") {
    status = RunGenerate(*flags);
  } else if (flags->command() == "stats") {
    status = RunStats(*flags);
  } else if (flags->command() == "evaluate") {
    status = RunEvaluate(*flags);
  } else if (flags->command() == "match") {
    status = RunMatch(*flags);
  } else if (flags->command() == "cluster") {
    status = RunCluster(*flags);
  } else {
    std::fprintf(stderr, "%s", kUsage);
    return flags->command().empty() ? 0 : 2;
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace leapme::cli
