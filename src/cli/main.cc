// Entry point of the `leapme` command-line tool. See cli/commands.h.

#include "cli/commands.h"

int main(int argc, char** argv) {
  return leapme::cli::RunCli(argc, argv);
}
