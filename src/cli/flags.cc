#include "cli/flags.h"

#include <cmath>

#include "common/string_util.h"

namespace leapme::cli {

StatusOr<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  int i = 1;
  if (i < argc && argv[i][0] != '-') {
    flags.command_ = argv[i];
    ++i;
  }
  for (; i < argc; ++i) {
    std::string token = argv[i];
    if (!StartsWith(token, "--")) {
      return Status::InvalidArgument("expected --flag, got '" + token + "'");
    }
    std::string key = token.substr(2);
    std::string value;
    size_t equals = key.find('=');
    if (equals != std::string::npos) {
      value = key.substr(equals + 1);
      key = key.substr(0, equals);
    } else {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + key + " needs a value");
      }
      value = argv[++i];
    }
    if (key.empty()) {
      return Status::InvalidArgument("empty flag name");
    }
    flags.values_[key] = value;
  }
  return flags;
}

std::string Flags::GetString(const std::string& key,
                             const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

int64_t Flags::GetInt(const std::string& key, int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::optional<double> parsed = ParseDouble(it->second);
  return parsed ? static_cast<int64_t>(*parsed) : fallback;
}

double Flags::GetDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return ParseDouble(it->second).value_or(fallback);
}

StatusOr<int64_t> Flags::GetIntInRange(const std::string& key,
                                       int64_t fallback, int64_t min,
                                       int64_t max) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::optional<double> parsed = ParseDouble(it->second);
  if (!parsed || *parsed != std::floor(*parsed)) {
    return Status::InvalidArgument("--" + key + " expects an integer, got '" +
                                   it->second + "'");
  }
  if (*parsed < static_cast<double>(min) ||
      *parsed > static_cast<double>(max)) {
    return Status::InvalidArgument(
        StrFormat("--%s must be in [%lld, %lld], got '%s'", key.c_str(),
                  static_cast<long long>(min), static_cast<long long>(max),
                  it->second.c_str()));
  }
  return static_cast<int64_t>(*parsed);
}

StatusOr<double> Flags::GetDoubleInRange(const std::string& key,
                                         double fallback, double min,
                                         double max) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::optional<double> parsed = ParseDouble(it->second);
  if (!parsed) {
    return Status::InvalidArgument("--" + key + " expects a number, got '" +
                                   it->second + "'");
  }
  if (*parsed < min || *parsed > max) {
    return Status::InvalidArgument(
        StrFormat("--%s must be in [%g, %g], got '%s'", key.c_str(), min,
                  max, it->second.c_str()));
  }
  return *parsed;
}

Status Flags::CheckAllowed(const std::vector<std::string>& allowed) const {
  for (const auto& [key, value] : values_) {
    bool known = false;
    for (const std::string& candidate : allowed) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("unknown flag --" + key);
    }
  }
  return Status::OK();
}

}  // namespace leapme::cli
