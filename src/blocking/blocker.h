#ifndef LEAPME_BLOCKING_BLOCKER_H_
#define LEAPME_BLOCKING_BLOCKER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status_or.h"
#include "data/dataset.h"
#include "embedding/embedding_model.h"

namespace leapme::blocking {

/// Cumulative activity counters for one blocker. Composite blockers
/// report one entry per child plus one for themselves, so serve stats
/// and bench reports can attribute candidates and time per stage.
struct BlockerStats {
  std::string name;
  /// Candidates() invocations (batch mode).
  uint64_t batch_calls = 0;
  /// Query() invocations (index mode).
  uint64_t queries = 0;
  /// Total candidates emitted across both modes (pairs or property ids).
  uint64_t candidates = 0;
  /// Total wall time spent generating them, in nanoseconds.
  uint64_t total_ns = 0;
};

/// Candidate generation ("blocking") for multi-source property matching.
///
/// Classifying every cross-source property pair is quadratic in the total
/// number of properties; with many sources (the paper's DI2KG camera
/// dataset has >3200 properties) the candidate space dominates the cost.
/// A blocker selects a candidate subset that retains (almost) all true
/// matches. LEAPME then scores only the candidates.
///
/// Two modes:
///  - Batch: Candidates(dataset) enumerates candidate pairs within one
///    dataset (CLI match/cluster/evaluate, benches).
///  - Index: BuildIndex(dataset) ingests a catalog once, after which
///    Query(name) returns the catalog properties an external property
///    with that name blocks against (the serve `index_match` path).
///    BuildIndex is not thread-safe; Query is const and safe to call
///    concurrently once the index is built.
class Blocker {
 public:
  virtual ~Blocker() = default;

  /// Human-readable blocker name.
  virtual std::string Name() const = 0;

  /// Returns candidate cross-source pairs (a < b, sorted, deduplicated).
  virtual StatusOr<std::vector<data::PropertyPair>> Candidates(
      const data::Dataset& dataset) = 0;

  /// Builds the index-mode state for `dataset`. Must complete before the
  /// first Query; `dataset` must outlive subsequent queries.
  virtual Status BuildIndex(const data::Dataset& dataset) = 0;

  /// Catalog property ids an external property named `name` blocks with,
  /// sorted ascending and deduplicated. FailedPrecondition before
  /// BuildIndex.
  virtual StatusOr<std::vector<data::PropertyId>> Query(
      std::string_view name) const = 0;

  /// Appends this blocker's cumulative stats (composites recurse).
  virtual void CollectStats(std::vector<BlockerStats>* out) const;

 protected:
  /// Counter bookkeeping shared by implementations. Atomic because Query
  /// runs concurrently on serve worker threads.
  void RecordBatch(size_t candidates, uint64_t ns) const;
  void RecordQuery(size_t candidates, uint64_t ns) const;

 private:
  mutable std::atomic<uint64_t> batch_calls_{0};
  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> candidates_{0};
  mutable std::atomic<uint64_t> total_ns_{0};
};

/// The passthrough blocker: every cross-source pair is a candidate.
/// Exists so the two-step pipeline subsumes the pre-pipeline
/// enumerate-all path — `--blocking=all-pairs` scores bit-identically to
/// the old implicit full cross product.
class AllPairsBlocker final : public Blocker {
 public:
  std::string Name() const override { return "all-pairs"; }
  StatusOr<std::vector<data::PropertyPair>> Candidates(
      const data::Dataset& dataset) override;
  Status BuildIndex(const data::Dataset& dataset) override;
  StatusOr<std::vector<data::PropertyId>> Query(
      std::string_view name) const override;

 private:
  bool indexed_ = false;
  size_t indexed_properties_ = 0;
};

/// Options for NameTokenBlocker.
struct NameTokenBlockerOptions {
  /// Tokens occurring in more than this fraction of all properties are
  /// stop-tokens and generate no candidates (otherwise a frequent word
  /// like "size" reconnects nearly everything).
  double max_token_frequency = 0.25;
};

/// Blocks on shared lower-cased name tokens via an inverted index:
/// candidates are cross-source pairs whose names share at least one
/// non-stop token. Catches lexical variants; misses pure synonyms.
class NameTokenBlocker final : public Blocker {
 public:
  explicit NameTokenBlocker(NameTokenBlockerOptions options = {})
      : options_(options) {}

  std::string Name() const override { return "name-token"; }
  StatusOr<std::vector<data::PropertyPair>> Candidates(
      const data::Dataset& dataset) override;
  Status BuildIndex(const data::Dataset& dataset) override;
  StatusOr<std::vector<data::PropertyId>> Query(
      std::string_view name) const override;

 private:
  NameTokenBlockerOptions options_;
  /// Index mode: token -> catalog property ids, stop-tokens removed at
  /// build time so queries pay no frequency check.
  bool indexed_ = false;
  std::unordered_map<std::string, std::vector<data::PropertyId>> index_;
};

/// Options for EmbeddingBlocker.
struct EmbeddingBlockerOptions {
  /// Number of hash tables (bands). More bands -> higher recall. The
  /// defaults are tuned so union(name-token,embedding-lsh) holds pair
  /// completeness above 0.95 on the synthetic catalogs while still
  /// pruning the pair space by well over 5x (see bench/blocking_bench).
  size_t bands = 16;
  /// Random-hyperplane bits per band. More bits -> smaller buckets.
  size_t bits_per_band = 8;
  uint64_t seed = 3;
};

/// Blocks on approximate name-embedding similarity with random-hyperplane
/// LSH: each property's average name embedding is hashed into `bands`
/// sign-bit signatures; properties sharing any band bucket are candidates.
/// Catches synonyms whose embeddings are close; complements token
/// blocking.
///
/// The per-property signature is one kernel-layer GEMM (1 x dim by
/// dim x total_bits) instead of per-bit scalar dots, and batch signature
/// computation is parallelized over properties with deterministic output
/// order (bucket assembly is sequential in ascending property id).
class EmbeddingBlocker final : public Blocker {
 public:
  /// `model` must outlive the blocker.
  EmbeddingBlocker(const embedding::EmbeddingModel* model,
                   EmbeddingBlockerOptions options = {})
      : model_(model), options_(options) {}

  std::string Name() const override { return "embedding-lsh"; }
  StatusOr<std::vector<data::PropertyPair>> Candidates(
      const data::Dataset& dataset) override;
  Status BuildIndex(const data::Dataset& dataset) override;
  /// Consults the `embedding.lookup` fault point: an armed error fault
  /// makes the query return Unavailable, which the serve layer degrades
  /// to a full-catalog scan instead of failing the request.
  StatusOr<std::vector<data::PropertyId>> Query(
      std::string_view name) const override;

 private:
  /// One sign-bit signature per band for one property; `skip` marks
  /// all-zero embeddings (fully OOV names) that carry no locality signal.
  struct Signatures {
    std::vector<uint64_t> bands;
    bool skip = false;
  };

  Status Validate() const;
  /// Derives the random hyperplanes from the seed (idempotent).
  void EnsureHyperplanes(size_t dimension);
  /// Computes per-band signatures for one name embedding via the kernel
  /// GEMM. Requires EnsureHyperplanes.
  Signatures ComputeSignatures(std::string_view name) const;
  /// Signatures for every property of `dataset`, parallelized over
  /// properties (each slot written by exactly one chunk, so the result is
  /// identical at any thread count).
  std::vector<Signatures> ComputeAllSignatures(
      const data::Dataset& dataset) const;

  const embedding::EmbeddingModel* model_;
  EmbeddingBlockerOptions options_;
  size_t dimension_ = 0;
  /// Row-major (bands * bits_per_band) x dimension hyperplane matrix.
  std::vector<float> hyperplanes_;
  /// Index mode: per band, signature -> catalog property ids.
  bool indexed_ = false;
  std::vector<std::unordered_map<uint64_t, std::vector<data::PropertyId>>>
      index_buckets_;
};

/// Union of several blockers' candidate sets (deduplicated). Owns its
/// children, so a composed pipeline cannot dangle.
class UnionBlocker final : public Blocker {
 public:
  explicit UnionBlocker(std::vector<std::unique_ptr<Blocker>> blockers)
      : blockers_(std::move(blockers)) {}

  std::string Name() const override { return "union"; }
  StatusOr<std::vector<data::PropertyPair>> Candidates(
      const data::Dataset& dataset) override;
  Status BuildIndex(const data::Dataset& dataset) override;
  StatusOr<std::vector<data::PropertyId>> Query(
      std::string_view name) const override;
  void CollectStats(std::vector<BlockerStats>* out) const override;

 private:
  std::vector<std::unique_ptr<Blocker>> blockers_;
};

/// Quality of a candidate set against ground truth.
struct BlockingQuality {
  /// Fraction of true matching pairs retained ("pair completeness").
  double pair_completeness = 0.0;
  /// 1 - |candidates| / |all cross-source pairs| ("reduction ratio").
  double reduction_ratio = 0.0;
  size_t candidate_count = 0;
  size_t total_pairs = 0;
};

/// Evaluates `candidates` against `dataset`'s ground truth.
BlockingQuality EvaluateBlocking(
    const data::Dataset& dataset,
    const std::vector<data::PropertyPair>& candidates);

}  // namespace leapme::blocking

#endif  // LEAPME_BLOCKING_BLOCKER_H_
