#ifndef LEAPME_BLOCKING_BLOCKER_H_
#define LEAPME_BLOCKING_BLOCKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "data/dataset.h"
#include "embedding/embedding_model.h"

namespace leapme::blocking {

/// Candidate generation ("blocking") for multi-source property matching.
///
/// Classifying every cross-source property pair is quadratic in the total
/// number of properties; with many sources (the paper's DI2KG camera
/// dataset has >3200 properties) the candidate space dominates the cost.
/// A blocker selects a candidate subset that retains (almost) all true
/// matches. LEAPME then scores only the candidates.
class Blocker {
 public:
  virtual ~Blocker() = default;

  /// Human-readable blocker name.
  virtual std::string Name() const = 0;

  /// Returns candidate cross-source pairs (a < b, deduplicated).
  virtual StatusOr<std::vector<data::PropertyPair>> Candidates(
      const data::Dataset& dataset) = 0;
};

/// Options for NameTokenBlocker.
struct NameTokenBlockerOptions {
  /// Tokens occurring in more than this fraction of all properties are
  /// stop-tokens and generate no candidates (otherwise a frequent word
  /// like "size" reconnects nearly everything).
  double max_token_frequency = 0.25;
};

/// Blocks on shared lower-cased name tokens via an inverted index:
/// candidates are cross-source pairs whose names share at least one
/// non-stop token. Catches lexical variants; misses pure synonyms.
class NameTokenBlocker final : public Blocker {
 public:
  explicit NameTokenBlocker(NameTokenBlockerOptions options = {})
      : options_(options) {}

  std::string Name() const override { return "name-token"; }
  StatusOr<std::vector<data::PropertyPair>> Candidates(
      const data::Dataset& dataset) override;

 private:
  NameTokenBlockerOptions options_;
};

/// Options for EmbeddingBlocker.
struct EmbeddingBlockerOptions {
  /// Number of hash tables (bands). More bands -> higher recall.
  size_t bands = 8;
  /// Random-hyperplane bits per band. More bits -> smaller buckets.
  size_t bits_per_band = 10;
  uint64_t seed = 3;
};

/// Blocks on approximate name-embedding similarity with random-hyperplane
/// LSH: each property's average name embedding is hashed into `bands`
/// sign-bit signatures; properties sharing any band bucket are candidates.
/// Catches synonyms whose embeddings are close; complements token
/// blocking.
class EmbeddingBlocker final : public Blocker {
 public:
  /// `model` must outlive the blocker.
  EmbeddingBlocker(const embedding::EmbeddingModel* model,
                   EmbeddingBlockerOptions options = {})
      : model_(model), options_(options) {}

  std::string Name() const override { return "embedding-lsh"; }
  StatusOr<std::vector<data::PropertyPair>> Candidates(
      const data::Dataset& dataset) override;

 private:
  const embedding::EmbeddingModel* model_;
  EmbeddingBlockerOptions options_;
};

/// Union of several blockers' candidate sets (deduplicated).
class UnionBlocker final : public Blocker {
 public:
  /// Pointers must outlive the blocker.
  explicit UnionBlocker(std::vector<Blocker*> blockers)
      : blockers_(std::move(blockers)) {}

  std::string Name() const override { return "union"; }
  StatusOr<std::vector<data::PropertyPair>> Candidates(
      const data::Dataset& dataset) override;

 private:
  std::vector<Blocker*> blockers_;
};

/// Quality of a candidate set against ground truth.
struct BlockingQuality {
  /// Fraction of true matching pairs retained ("pair completeness").
  double pair_completeness = 0.0;
  /// 1 - |candidates| / |all cross-source pairs| ("reduction ratio").
  double reduction_ratio = 0.0;
  size_t candidate_count = 0;
  size_t total_pairs = 0;
};

/// Evaluates `candidates` against `dataset`'s ground truth.
BlockingQuality EvaluateBlocking(
    const data::Dataset& dataset,
    const std::vector<data::PropertyPair>& candidates);

}  // namespace leapme::blocking

#endif  // LEAPME_BLOCKING_BLOCKER_H_
