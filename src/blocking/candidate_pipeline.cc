#include "blocking/candidate_pipeline.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/string_util.h"

namespace leapme::blocking {

namespace {

Status SpecError(const std::string& message) {
  return Status::InvalidArgument("blocking spec: " + message);
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
         c == '_';
}

void SkipSpaces(std::string_view* rest) {
  while (!rest->empty() &&
         std::isspace(static_cast<unsigned char>(rest->front())) != 0) {
    rest->remove_prefix(1);
  }
}

std::string_view TrimSpaces(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front())) != 0) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back())) != 0) {
    text.remove_suffix(1);
  }
  return text;
}

bool ParseUint64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  auto [end, ec] = std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && end == text.data() + text.size();
}

bool ParseFiniteDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  std::string buffer(text);
  char* end = nullptr;
  *out = std::strtod(buffer.c_str(), &end);
  return end == buffer.c_str() + buffer.size() && std::isfinite(*out);
}

using Params = std::vector<std::pair<std::string, std::string>>;

/// Builds a leaf blocker from its registry name and `key=value` params.
StatusOr<std::unique_ptr<Blocker>> MakeLeafBlocker(
    const std::string& name, const Params& params,
    const embedding::EmbeddingModel* model) {
  if (name == "all-pairs") {
    if (!params.empty()) {
      return SpecError("all-pairs takes no parameters");
    }
    return std::unique_ptr<Blocker>(std::make_unique<AllPairsBlocker>());
  }
  if (name == "name-token") {
    NameTokenBlockerOptions options;
    for (const auto& [key, value] : params) {
      if (key == "max-freq") {
        double freq = 0.0;
        if (!ParseFiniteDouble(value, &freq) || freq <= 0.0 || freq > 1.0) {
          return SpecError("name-token max-freq must be in (0, 1], got '" +
                           value + "'");
        }
        options.max_token_frequency = freq;
      } else {
        return SpecError("unknown name-token parameter '" + key + "'");
      }
    }
    return std::unique_ptr<Blocker>(
        std::make_unique<NameTokenBlocker>(options));
  }
  if (name == "embedding-lsh") {
    if (model == nullptr) {
      return SpecError(
          "embedding-lsh requires an embedding model (none configured)");
    }
    EmbeddingBlockerOptions options;
    for (const auto& [key, value] : params) {
      uint64_t parsed = 0;
      if (!ParseUint64(value, &parsed)) {
        return SpecError("embedding-lsh " + key +
                         " must be a non-negative integer, got '" + value +
                         "'");
      }
      if (key == "bands") {
        if (parsed == 0 || parsed > 256) {
          return SpecError("embedding-lsh bands must be in [1, 256]");
        }
        options.bands = static_cast<size_t>(parsed);
      } else if (key == "bits") {
        if (parsed == 0 || parsed > 63) {
          return SpecError("embedding-lsh bits must be in [1, 63]");
        }
        options.bits_per_band = static_cast<size_t>(parsed);
      } else if (key == "seed") {
        options.seed = parsed;
      } else {
        return SpecError("unknown embedding-lsh parameter '" + key + "'");
      }
    }
    return std::unique_ptr<Blocker>(
        std::make_unique<EmbeddingBlocker>(model, options));
  }
  return SpecError("unknown blocker '" + name +
                   "' (all-pairs|name-token|embedding-lsh|union)");
}

/// Recursive-descent parse of one `blocker` production; advances `rest`
/// past the consumed text.
StatusOr<std::unique_ptr<Blocker>> ParseBlockerExpr(
    std::string_view* rest, const embedding::EmbeddingModel* model) {
  SkipSpaces(rest);
  size_t name_len = 0;
  while (name_len < rest->size() && IsNameChar((*rest)[name_len])) {
    ++name_len;
  }
  if (name_len == 0) {
    return SpecError("expected a blocker name");
  }
  std::string name(rest->substr(0, name_len));
  rest->remove_prefix(name_len);
  SkipSpaces(rest);

  if (name == "union") {
    if (rest->empty() || rest->front() != '(') {
      return SpecError("union requires a parenthesized blocker list");
    }
    rest->remove_prefix(1);
    std::vector<std::unique_ptr<Blocker>> children;
    while (true) {
      LEAPME_ASSIGN_OR_RETURN(std::unique_ptr<Blocker> child,
                              ParseBlockerExpr(rest, model));
      children.push_back(std::move(child));
      SkipSpaces(rest);
      if (!rest->empty() && rest->front() == ',') {
        rest->remove_prefix(1);
        continue;
      }
      if (!rest->empty() && rest->front() == ')') {
        rest->remove_prefix(1);
        break;
      }
      return SpecError("expected ',' or ')' in union(...)");
    }
    return std::unique_ptr<Blocker>(
        std::make_unique<UnionBlocker>(std::move(children)));
  }

  Params params;
  while (!rest->empty() && rest->front() == ':') {
    rest->remove_prefix(1);
    SkipSpaces(rest);
    size_t key_len = 0;
    while (key_len < rest->size() && IsNameChar((*rest)[key_len])) {
      ++key_len;
    }
    if (key_len == 0) {
      return SpecError("expected a parameter name after ':' in '" + name +
                       "'");
    }
    std::string key(rest->substr(0, key_len));
    rest->remove_prefix(key_len);
    SkipSpaces(rest);
    if (rest->empty() || rest->front() != '=') {
      return SpecError("parameter '" + key + "' of '" + name +
                       "' requires '=value'");
    }
    rest->remove_prefix(1);
    size_t value_len = 0;
    while (value_len < rest->size() && (*rest)[value_len] != ':' &&
           (*rest)[value_len] != ',' && (*rest)[value_len] != ')') {
      ++value_len;
    }
    std::string value(TrimSpaces(rest->substr(0, value_len)));
    rest->remove_prefix(value_len);
    if (value.empty()) {
      return SpecError("parameter '" + key + "' of '" + name +
                       "' has an empty value");
    }
    params.emplace_back(std::move(key), std::move(value));
  }
  return MakeLeafBlocker(name, params, model);
}

}  // namespace

StatusOr<std::unique_ptr<CandidatePipeline>> CandidatePipeline::Parse(
    std::string_view spec, const embedding::EmbeddingModel* model) {
  std::string_view rest = spec;
  LEAPME_ASSIGN_OR_RETURN(std::unique_ptr<Blocker> root,
                          ParseBlockerExpr(&rest, model));
  SkipSpaces(&rest);
  if (!rest.empty()) {
    return SpecError("trailing characters '" + std::string(rest) + "'");
  }
  return std::unique_ptr<CandidatePipeline>(
      new CandidatePipeline(std::string(spec), std::move(root)));
}

StatusOr<std::vector<data::PropertyPair>> CandidatePipeline::Candidates(
    const data::Dataset& dataset) {
  return root_->Candidates(dataset);
}

Status CandidatePipeline::BuildIndex(const data::Dataset& dataset) {
  return root_->BuildIndex(dataset);
}

StatusOr<std::vector<data::PropertyId>> CandidatePipeline::Query(
    std::string_view name) const {
  return root_->Query(name);
}

std::vector<BlockerStats> CandidatePipeline::SnapshotStats() const {
  std::vector<BlockerStats> stats;
  root_->CollectStats(&stats);
  return stats;
}

}  // namespace leapme::blocking
