#include "blocking/blocker.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "common/faults/fault_injector.h"
#include "common/kernels/kernels.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "text/tokenizer.h"

namespace leapme::blocking {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Canonicalizes and deduplicates a candidate list.
std::vector<data::PropertyPair> Deduplicate(
    std::vector<data::PropertyPair> pairs) {
  for (data::PropertyPair& pair : pairs) {
    if (pair.a > pair.b) std::swap(pair.a, pair.b);
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const data::PropertyPair& x, const data::PropertyPair& y) {
              return x.a != y.a ? x.a < y.a : x.b < y.b;
            });
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

// Sorted, deduplicated property-id list.
std::vector<data::PropertyId> DeduplicateIds(
    std::vector<data::PropertyId> ids) {
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

// Emits all cross-source pairs within one bucket of property ids.
void EmitBucketPairs(const data::Dataset& dataset,
                     const std::vector<data::PropertyId>& bucket,
                     std::vector<data::PropertyPair>* out) {
  for (size_t i = 0; i < bucket.size(); ++i) {
    for (size_t j = i + 1; j < bucket.size(); ++j) {
      if (dataset.property(bucket[i]).source !=
          dataset.property(bucket[j]).source) {
        out->push_back(data::PropertyPair{bucket[i], bucket[j]});
      }
    }
  }
}

// Unique lower-cased embedding words of a property name.
std::set<std::string> NameTokens(std::string_view name) {
  std::set<std::string> tokens;
  for (std::string& token : text::EmbeddingWords(name)) {
    tokens.insert(std::move(token));
  }
  return tokens;
}

// Token -> ascending property ids for every property of `dataset`.
std::unordered_map<std::string, std::vector<data::PropertyId>> BuildTokenIndex(
    const data::Dataset& dataset) {
  std::unordered_map<std::string, std::vector<data::PropertyId>> index;
  for (data::PropertyId id = 0; id < dataset.property_count(); ++id) {
    for (const std::string& token : NameTokens(dataset.property(id).name)) {
      index[token].push_back(id);
    }
  }
  return index;
}

// A bucket larger than this is a stop-token bucket: a token so frequent
// it would reconnect nearly everything.
size_t StopBucketSize(double max_token_frequency, size_t property_count) {
  const auto stop_size = static_cast<size_t>(
      max_token_frequency * static_cast<double>(property_count));
  return std::max<size_t>(stop_size, 2);
}

}  // namespace

void Blocker::CollectStats(std::vector<BlockerStats>* out) const {
  BlockerStats stats;
  stats.name = Name();
  stats.batch_calls = batch_calls_.load(std::memory_order_relaxed);
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.candidates = candidates_.load(std::memory_order_relaxed);
  stats.total_ns = total_ns_.load(std::memory_order_relaxed);
  out->push_back(std::move(stats));
}

void Blocker::RecordBatch(size_t candidates, uint64_t ns) const {
  batch_calls_.fetch_add(1, std::memory_order_relaxed);
  candidates_.fetch_add(candidates, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
}

void Blocker::RecordQuery(size_t candidates, uint64_t ns) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  candidates_.fetch_add(candidates, std::memory_order_relaxed);
  total_ns_.fetch_add(ns, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// AllPairsBlocker

StatusOr<std::vector<data::PropertyPair>> AllPairsBlocker::Candidates(
    const data::Dataset& dataset) {
  const uint64_t start = NowNs();
  std::vector<data::PropertyPair> pairs = dataset.AllCrossSourcePairs();
  RecordBatch(pairs.size(), NowNs() - start);
  return pairs;
}

Status AllPairsBlocker::BuildIndex(const data::Dataset& dataset) {
  indexed_properties_ = dataset.property_count();
  indexed_ = true;
  return Status::OK();
}

StatusOr<std::vector<data::PropertyId>> AllPairsBlocker::Query(
    std::string_view /*name*/) const {
  if (!indexed_) {
    return Status::FailedPrecondition("all-pairs: BuildIndex not called");
  }
  const uint64_t start = NowNs();
  std::vector<data::PropertyId> ids(indexed_properties_);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<data::PropertyId>(i);
  }
  RecordQuery(ids.size(), NowNs() - start);
  return ids;
}

// ---------------------------------------------------------------------------
// NameTokenBlocker

StatusOr<std::vector<data::PropertyPair>> NameTokenBlocker::Candidates(
    const data::Dataset& dataset) {
  const uint64_t start = NowNs();
  const auto index = BuildTokenIndex(dataset);
  const size_t stop_size =
      StopBucketSize(options_.max_token_frequency, dataset.property_count());
  std::vector<data::PropertyPair> candidates;
  for (const auto& [token, bucket] : index) {
    if (bucket.size() <= 1 || bucket.size() > stop_size) continue;
    EmitBucketPairs(dataset, bucket, &candidates);
  }
  candidates = Deduplicate(std::move(candidates));
  RecordBatch(candidates.size(), NowNs() - start);
  return candidates;
}

Status NameTokenBlocker::BuildIndex(const data::Dataset& dataset) {
  index_ = BuildTokenIndex(dataset);
  // Drop stop-token buckets at build time so queries pay no frequency
  // check. Size-1 buckets stay: the external query property is the
  // second member of the pair.
  const size_t stop_size =
      StopBucketSize(options_.max_token_frequency, dataset.property_count());
  for (auto it = index_.begin(); it != index_.end();) {
    if (it->second.size() > stop_size) {
      it = index_.erase(it);
    } else {
      ++it;
    }
  }
  indexed_ = true;
  return Status::OK();
}

StatusOr<std::vector<data::PropertyId>> NameTokenBlocker::Query(
    std::string_view name) const {
  if (!indexed_) {
    return Status::FailedPrecondition("name-token: BuildIndex not called");
  }
  const uint64_t start = NowNs();
  std::vector<data::PropertyId> ids;
  for (const std::string& token : NameTokens(name)) {
    auto it = index_.find(token);
    if (it == index_.end()) continue;
    ids.insert(ids.end(), it->second.begin(), it->second.end());
  }
  ids = DeduplicateIds(std::move(ids));
  RecordQuery(ids.size(), NowNs() - start);
  return ids;
}

// ---------------------------------------------------------------------------
// EmbeddingBlocker

Status EmbeddingBlocker::Validate() const {
  if (model_ == nullptr) {
    return Status::InvalidArgument("embedding-lsh requires a model");
  }
  if (options_.bands == 0 || options_.bits_per_band == 0 ||
      options_.bits_per_band > 63) {
    return Status::InvalidArgument("bad LSH configuration");
  }
  return Status::OK();
}

void EmbeddingBlocker::EnsureHyperplanes(size_t dimension) {
  const size_t total_bits = options_.bands * options_.bits_per_band;
  if (dimension_ == dimension && hyperplanes_.size() == total_bits * dimension) {
    return;
  }
  // Random hyperplanes, derived deterministically from the seed. Row
  // band*bits_per_band + bit holds the hyperplane for that signature bit.
  Rng rng(options_.seed);
  hyperplanes_.assign(total_bits * dimension, 0.0f);
  for (float& value : hyperplanes_) {
    value = static_cast<float>(rng.NextGaussian());
  }
  dimension_ = dimension;
}

EmbeddingBlocker::Signatures EmbeddingBlocker::ComputeSignatures(
    std::string_view name) const {
  Signatures result;
  const embedding::Vector name_embedding = embedding::AverageEmbedding(
      *model_, text::EmbeddingWords(name));
  // All-zero embeddings (fully OOV names under the zero-vector policy)
  // carry no locality signal; skip them rather than bucket them all
  // together.
  bool all_zero = true;
  for (float value : name_embedding) {
    if (value != 0.0f) {
      all_zero = false;
      break;
    }
  }
  if (all_zero) {
    result.skip = true;
    return result;
  }

  // One kernel GEMM projects the embedding onto every hyperplane at once:
  // out[row] = canonical dot(embedding, hyperplane row).
  const size_t total_bits = options_.bands * options_.bits_per_band;
  std::vector<float> projections(total_bits);
  kernels::Active().gemm_tb(name_embedding.data(), hyperplanes_.data(),
                            projections.data(), /*rows=*/1, dimension_,
                            total_bits);

  result.bands.resize(options_.bands);
  for (size_t band = 0; band < options_.bands; ++band) {
    uint64_t signature = 0;
    for (size_t bit = 0; bit < options_.bits_per_band; ++bit) {
      const float dot = projections[band * options_.bits_per_band + bit];
      signature = (signature << 1) | (dot >= 0.0f ? 1 : 0);
    }
    result.bands[band] = signature;
  }
  return result;
}

std::vector<EmbeddingBlocker::Signatures>
EmbeddingBlocker::ComputeAllSignatures(const data::Dataset& dataset) const {
  std::vector<Signatures> signatures(dataset.property_count());
  // Each chunk writes only its own slots, so the result is bit-identical
  // at any thread count (ParallelFor's determinism contract).
  ParallelFor(0, dataset.property_count(), /*grain=*/64,
              [&](size_t begin, size_t end) {
                for (size_t id = begin; id < end; ++id) {
                  signatures[id] = ComputeSignatures(
                      dataset.property(static_cast<data::PropertyId>(id)).name);
                }
              });
  return signatures;
}

StatusOr<std::vector<data::PropertyPair>> EmbeddingBlocker::Candidates(
    const data::Dataset& dataset) {
  LEAPME_RETURN_IF_ERROR(Validate());
  const uint64_t start = NowNs();
  EnsureHyperplanes(model_->dimension());
  const std::vector<Signatures> signatures = ComputeAllSignatures(dataset);

  // Bucket assembly is sequential in ascending property id, so bucket
  // member order — and therefore the emitted pair list — is deterministic.
  std::vector<std::unordered_map<uint64_t, std::vector<data::PropertyId>>>
      buckets(options_.bands);
  for (data::PropertyId id = 0; id < dataset.property_count(); ++id) {
    if (signatures[id].skip) continue;
    for (size_t band = 0; band < options_.bands; ++band) {
      buckets[band][signatures[id].bands[band]].push_back(id);
    }
  }

  std::vector<data::PropertyPair> candidates;
  for (const auto& band : buckets) {
    for (const auto& [signature, bucket] : band) {
      EmitBucketPairs(dataset, bucket, &candidates);
    }
  }
  candidates = Deduplicate(std::move(candidates));
  RecordBatch(candidates.size(), NowNs() - start);
  return candidates;
}

Status EmbeddingBlocker::BuildIndex(const data::Dataset& dataset) {
  LEAPME_RETURN_IF_ERROR(Validate());
  EnsureHyperplanes(model_->dimension());
  const std::vector<Signatures> signatures = ComputeAllSignatures(dataset);
  index_buckets_.assign(options_.bands, {});
  for (data::PropertyId id = 0; id < dataset.property_count(); ++id) {
    if (signatures[id].skip) continue;
    for (size_t band = 0; band < options_.bands; ++band) {
      index_buckets_[band][signatures[id].bands[band]].push_back(id);
    }
  }
  indexed_ = true;
  return Status::OK();
}

StatusOr<std::vector<data::PropertyId>> EmbeddingBlocker::Query(
    std::string_view name) const {
  if (!indexed_) {
    return Status::FailedPrecondition("embedding-lsh: BuildIndex not called");
  }
  if (faults::InjectError("embedding.lookup")) {
    return Status::Unavailable("injected embedding failure during blocking");
  }
  const uint64_t start = NowNs();
  const Signatures signatures = ComputeSignatures(name);
  std::vector<data::PropertyId> ids;
  if (!signatures.skip) {
    for (size_t band = 0; band < options_.bands; ++band) {
      auto it = index_buckets_[band].find(signatures.bands[band]);
      if (it == index_buckets_[band].end()) continue;
      ids.insert(ids.end(), it->second.begin(), it->second.end());
    }
    ids = DeduplicateIds(std::move(ids));
  }
  RecordQuery(ids.size(), NowNs() - start);
  return ids;
}

// ---------------------------------------------------------------------------
// UnionBlocker

StatusOr<std::vector<data::PropertyPair>> UnionBlocker::Candidates(
    const data::Dataset& dataset) {
  const uint64_t start = NowNs();
  std::vector<data::PropertyPair> all;
  for (const std::unique_ptr<Blocker>& blocker : blockers_) {
    if (blocker == nullptr) {
      return Status::InvalidArgument("null blocker in union");
    }
    LEAPME_ASSIGN_OR_RETURN(std::vector<data::PropertyPair> candidates,
                            blocker->Candidates(dataset));
    all.insert(all.end(), candidates.begin(), candidates.end());
  }
  all = Deduplicate(std::move(all));
  RecordBatch(all.size(), NowNs() - start);
  return all;
}

Status UnionBlocker::BuildIndex(const data::Dataset& dataset) {
  for (const std::unique_ptr<Blocker>& blocker : blockers_) {
    if (blocker == nullptr) {
      return Status::InvalidArgument("null blocker in union");
    }
    LEAPME_RETURN_IF_ERROR(blocker->BuildIndex(dataset));
  }
  return Status::OK();
}

StatusOr<std::vector<data::PropertyId>> UnionBlocker::Query(
    std::string_view name) const {
  const uint64_t start = NowNs();
  std::vector<data::PropertyId> ids;
  for (const std::unique_ptr<Blocker>& blocker : blockers_) {
    LEAPME_ASSIGN_OR_RETURN(std::vector<data::PropertyId> part,
                            blocker->Query(name));
    ids.insert(ids.end(), part.begin(), part.end());
  }
  ids = DeduplicateIds(std::move(ids));
  RecordQuery(ids.size(), NowNs() - start);
  return ids;
}

void UnionBlocker::CollectStats(std::vector<BlockerStats>* out) const {
  Blocker::CollectStats(out);
  for (const std::unique_ptr<Blocker>& blocker : blockers_) {
    if (blocker != nullptr) blocker->CollectStats(out);
  }
}

BlockingQuality EvaluateBlocking(
    const data::Dataset& dataset,
    const std::vector<data::PropertyPair>& candidates) {
  BlockingQuality quality;
  quality.candidate_count = candidates.size();

  size_t total_pairs = 0;
  size_t total_matches = 0;
  for (data::PropertyId a = 0; a < dataset.property_count(); ++a) {
    for (data::PropertyId b = a + 1; b < dataset.property_count(); ++b) {
      if (dataset.property(a).source == dataset.property(b).source) continue;
      ++total_pairs;
      if (dataset.IsMatch(a, b)) ++total_matches;
    }
  }
  quality.total_pairs = total_pairs;

  size_t retained_matches = 0;
  for (const data::PropertyPair& pair : candidates) {
    if (dataset.IsMatch(pair.a, pair.b)) ++retained_matches;
  }
  if (total_matches > 0) {
    quality.pair_completeness = static_cast<double>(retained_matches) /
                                static_cast<double>(total_matches);
  }
  if (total_pairs > 0) {
    quality.reduction_ratio =
        1.0 - static_cast<double>(candidates.size()) /
                  static_cast<double>(total_pairs);
  }
  return quality;
}

}  // namespace leapme::blocking
