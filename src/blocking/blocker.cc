#include "blocking/blocker.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "common/rng.h"
#include "text/tokenizer.h"

namespace leapme::blocking {

namespace {

// Canonicalizes and deduplicates a candidate list.
std::vector<data::PropertyPair> Deduplicate(
    std::vector<data::PropertyPair> pairs) {
  for (data::PropertyPair& pair : pairs) {
    if (pair.a > pair.b) std::swap(pair.a, pair.b);
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const data::PropertyPair& x, const data::PropertyPair& y) {
              return x.a != y.a ? x.a < y.a : x.b < y.b;
            });
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

// Emits all cross-source pairs within one bucket of property ids.
void EmitBucketPairs(const data::Dataset& dataset,
                     const std::vector<data::PropertyId>& bucket,
                     std::vector<data::PropertyPair>* out) {
  for (size_t i = 0; i < bucket.size(); ++i) {
    for (size_t j = i + 1; j < bucket.size(); ++j) {
      if (dataset.property(bucket[i]).source !=
          dataset.property(bucket[j]).source) {
        out->push_back(data::PropertyPair{bucket[i], bucket[j]});
      }
    }
  }
}

}  // namespace

StatusOr<std::vector<data::PropertyPair>> NameTokenBlocker::Candidates(
    const data::Dataset& dataset) {
  std::unordered_map<std::string, std::vector<data::PropertyId>> index;
  for (data::PropertyId id = 0; id < dataset.property_count(); ++id) {
    std::set<std::string> tokens;
    for (const std::string& token :
         text::EmbeddingWords(dataset.property(id).name)) {
      tokens.insert(token);
    }
    for (const std::string& token : tokens) {
      index[token].push_back(id);
    }
  }
  const auto stop_size = static_cast<size_t>(
      options_.max_token_frequency *
      static_cast<double>(dataset.property_count()));
  std::vector<data::PropertyPair> candidates;
  for (const auto& [token, bucket] : index) {
    if (bucket.size() <= 1 || bucket.size() > std::max<size_t>(stop_size, 2)) {
      continue;
    }
    EmitBucketPairs(dataset, bucket, &candidates);
  }
  return Deduplicate(std::move(candidates));
}

StatusOr<std::vector<data::PropertyPair>> EmbeddingBlocker::Candidates(
    const data::Dataset& dataset) {
  if (options_.bands == 0 || options_.bits_per_band == 0 ||
      options_.bits_per_band > 63) {
    return Status::InvalidArgument("bad LSH configuration");
  }
  const size_t d = model_->dimension();
  const size_t total_bits = options_.bands * options_.bits_per_band;

  // Random hyperplanes, derived deterministically from the seed.
  Rng rng(options_.seed);
  std::vector<float> hyperplanes(total_bits * d);
  for (float& value : hyperplanes) {
    value = static_cast<float>(rng.NextGaussian());
  }

  // Per-band hash buckets.
  std::vector<std::unordered_map<uint64_t, std::vector<data::PropertyId>>>
      buckets(options_.bands);
  for (data::PropertyId id = 0; id < dataset.property_count(); ++id) {
    embedding::Vector name_embedding = embedding::AverageEmbedding(
        *model_, text::EmbeddingWords(dataset.property(id).name));
    // All-zero embeddings (fully OOV names under the zero-vector policy)
    // carry no locality signal; skip them rather than bucket them all
    // together.
    bool all_zero = true;
    for (float value : name_embedding) {
      if (value != 0.0f) {
        all_zero = false;
        break;
      }
    }
    if (all_zero) continue;

    for (size_t band = 0; band < options_.bands; ++band) {
      uint64_t signature = 0;
      for (size_t bit = 0; bit < options_.bits_per_band; ++bit) {
        const float* hyperplane =
            hyperplanes.data() + (band * options_.bits_per_band + bit) * d;
        float dot = 0.0f;
        for (size_t k = 0; k < d; ++k) {
          dot += hyperplane[k] * name_embedding[k];
        }
        signature = (signature << 1) | (dot >= 0.0f ? 1 : 0);
      }
      buckets[band][signature].push_back(id);
    }
  }

  std::vector<data::PropertyPair> candidates;
  for (const auto& band : buckets) {
    for (const auto& [signature, bucket] : band) {
      EmitBucketPairs(dataset, bucket, &candidates);
    }
  }
  return Deduplicate(std::move(candidates));
}

StatusOr<std::vector<data::PropertyPair>> UnionBlocker::Candidates(
    const data::Dataset& dataset) {
  std::vector<data::PropertyPair> all;
  for (Blocker* blocker : blockers_) {
    if (blocker == nullptr) {
      return Status::InvalidArgument("null blocker in union");
    }
    LEAPME_ASSIGN_OR_RETURN(std::vector<data::PropertyPair> candidates,
                            blocker->Candidates(dataset));
    all.insert(all.end(), candidates.begin(), candidates.end());
  }
  return Deduplicate(std::move(all));
}

BlockingQuality EvaluateBlocking(
    const data::Dataset& dataset,
    const std::vector<data::PropertyPair>& candidates) {
  BlockingQuality quality;
  quality.candidate_count = candidates.size();

  size_t total_pairs = 0;
  size_t total_matches = 0;
  for (data::PropertyId a = 0; a < dataset.property_count(); ++a) {
    for (data::PropertyId b = a + 1; b < dataset.property_count(); ++b) {
      if (dataset.property(a).source == dataset.property(b).source) continue;
      ++total_pairs;
      if (dataset.IsMatch(a, b)) ++total_matches;
    }
  }
  quality.total_pairs = total_pairs;

  size_t retained_matches = 0;
  for (const data::PropertyPair& pair : candidates) {
    if (dataset.IsMatch(pair.a, pair.b)) ++retained_matches;
  }
  if (total_matches > 0) {
    quality.pair_completeness = static_cast<double>(retained_matches) /
                                static_cast<double>(total_matches);
  }
  if (total_pairs > 0) {
    quality.reduction_ratio =
        1.0 - static_cast<double>(candidates.size()) /
                  static_cast<double>(total_pairs);
  }
  return quality;
}

}  // namespace leapme::blocking
