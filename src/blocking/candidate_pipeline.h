#ifndef LEAPME_BLOCKING_CANDIDATE_PIPELINE_H_
#define LEAPME_BLOCKING_CANDIDATE_PIPELINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "blocking/blocker.h"
#include "common/status_or.h"
#include "data/dataset.h"
#include "embedding/embedding_model.h"

namespace leapme::blocking {

/// The candidate-generation half of the two-step matching pipeline:
/// parses a blocker spec string into an owned blocker tree and exposes
/// its batch (Candidates) and index (BuildIndex/Query) modes plus
/// cumulative per-blocker stats for serve and bench reporting.
///
/// Spec grammar (whitespace around tokens is ignored):
///
///   spec    := blocker
///   blocker := name params | "union(" blocker ("," blocker)* ")"
///   params  := (":" key "=" value)*
///
/// Registered blockers and their parameters:
///
///   all-pairs                  passthrough; every cross-source pair
///   name-token                 max-freq=<(0,1]>      (default 0.25)
///   embedding-lsh              bands=<1..256>        (default 16)
///                              bits=<1..63>          (default 8)
///                              seed=<uint>           (default 3)
///   union(a,b,...)             union of child candidate sets
///
/// Examples: "all-pairs", "name-token:max-freq=0.1",
/// "union(name-token,embedding-lsh:bands=16:bits=8)".
///
/// Malformed specs (unknown blocker or parameter, bad value, unbalanced
/// parentheses, empty union, trailing characters) parse to
/// InvalidArgument.
class CandidatePipeline {
 public:
  /// Parses `spec`; `model` backs `embedding-lsh` blockers and must
  /// outlive the pipeline (may be nullptr for specs that never use
  /// embeddings — an embedding-lsh spec without a model is
  /// InvalidArgument).
  static StatusOr<std::unique_ptr<CandidatePipeline>> Parse(
      std::string_view spec, const embedding::EmbeddingModel* model);

  /// Batch mode: candidate cross-source pairs of `dataset` (a < b,
  /// sorted, deduplicated).
  StatusOr<std::vector<data::PropertyPair>> Candidates(
      const data::Dataset& dataset);

  /// Index mode, step 1: ingest `dataset` as the catalog. Not
  /// thread-safe; call once before serving queries. `dataset` must
  /// outlive subsequent queries.
  Status BuildIndex(const data::Dataset& dataset);

  /// Index mode, step 2: catalog property ids blocked against an
  /// external property named `name` (sorted, deduplicated). Const and
  /// thread-safe after BuildIndex.
  StatusOr<std::vector<data::PropertyId>> Query(std::string_view name) const;

  /// Cumulative per-blocker stats (one entry per blocker in the tree).
  std::vector<BlockerStats> SnapshotStats() const;

  /// The spec string this pipeline was parsed from.
  const std::string& spec() const { return spec_; }

 private:
  CandidatePipeline(std::string spec, std::unique_ptr<Blocker> root)
      : spec_(std::move(spec)), root_(std::move(root)) {}

  std::string spec_;
  std::unique_ptr<Blocker> root_;
};

/// The default spec for batch CLI paths: the passthrough blocker, which
/// preserves the pre-pipeline full-enumeration behavior bit for bit.
inline constexpr std::string_view kDefaultBlockingSpec = "all-pairs";

/// The default spec for the serve catalog index, where full enumeration
/// per query defeats the point: lexical + embedding recall.
inline constexpr std::string_view kDefaultIndexBlockingSpec =
    "union(name-token,embedding-lsh)";

}  // namespace leapme::blocking

#endif  // LEAPME_BLOCKING_CANDIDATE_PIPELINE_H_
