#ifndef LEAPME_NN_TRAINER_H_
#define LEAPME_NN_TRAINER_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"

namespace leapme::nn {

/// One phase of the stepped learning-rate schedule.
struct LrPhase {
  size_t epochs = 0;
  double learning_rate = 0.0;
};

/// Mini-batch training configuration. Defaults reproduce the paper's §IV-D
/// hyper-parameters: batch size 32; 10 epochs at 1e-3, then 5 at 1e-4,
/// then 5 at 1e-5.
struct TrainerOptions {
  size_t batch_size = 32;
  std::vector<LrPhase> schedule = {
      {10, 1e-3},
      {5, 1e-4},
      {5, 1e-5},
  };
  OptimizerKind optimizer = OptimizerKind::kAdam;
  uint64_t shuffle_seed = 7;
  bool shuffle = true;
  /// Fraction of rows held out as a validation set for early stopping
  /// (0 disables early stopping — the paper trains the full schedule).
  double validation_fraction = 0.0;
  /// With validation enabled: stop after this many consecutive epochs
  /// without validation-loss improvement.
  size_t patience = 3;
};

/// Drives mini-batch training of an Mlp over a fixed design matrix.
class Trainer {
 public:
  explicit Trainer(TrainerOptions options = {})
      : options_(std::move(options)) {}

  /// Trains `mlp` on `inputs` (N x D) with integer `labels` (length N).
  /// Returns the mean loss of each epoch in order. Fails when shapes
  /// disagree or the dataset is empty.
  StatusOr<std::vector<double>> Fit(Mlp& mlp, const Matrix& inputs,
                                    const std::vector<int32_t>& labels) const;

  const TrainerOptions& options() const { return options_; }

 private:
  TrainerOptions options_;
};

}  // namespace leapme::nn

#endif  // LEAPME_NN_TRAINER_H_
