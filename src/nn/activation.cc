#include "nn/activation.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace leapme::nn {

void ReluLayer::Forward(const Matrix& input, Matrix* output) {
  output->Resize(input.rows(), input.cols());
  mask_.Resize(input.rows(), input.cols());
  for (size_t i = 0; i < input.size(); ++i) {
    float v = input.data()[i];
    if (v > 0.0f) {
      output->data()[i] = v;
      mask_.data()[i] = 1.0f;
    }
  }
}

void ReluLayer::ForwardInference(const Matrix& input, Matrix* output) const {
  output->Resize(input.rows(), input.cols());
  for (size_t i = 0; i < input.size(); ++i) {
    float v = input.data()[i];
    if (v > 0.0f) {
      output->data()[i] = v;
    }
  }
}

void ReluLayer::Backward(const Matrix& grad_output, Matrix* grad_input) {
  LEAPME_CHECK_EQ(grad_output.rows(), mask_.rows());
  LEAPME_CHECK_EQ(grad_output.cols(), mask_.cols());
  grad_input->Resize(grad_output.rows(), grad_output.cols());
  for (size_t i = 0; i < grad_output.size(); ++i) {
    grad_input->data()[i] = grad_output.data()[i] * mask_.data()[i];
  }
}

DropoutLayer::DropoutLayer(double rate, uint64_t seed)
    : rate_(rate), rng_(seed) {
  LEAPME_CHECK_GE(rate, 0.0);
  LEAPME_CHECK_LT(rate, 1.0);
}

void DropoutLayer::Forward(const Matrix& input, Matrix* output) {
  output->Resize(input.rows(), input.cols());
  if (!training_ || rate_ == 0.0) {
    std::copy(input.data(), input.data() + input.size(), output->data());
    return;
  }
  mask_.Resize(input.rows(), input.cols());
  const auto keep_scale = static_cast<float>(1.0 / (1.0 - rate_));
  for (size_t i = 0; i < input.size(); ++i) {
    if (rng_.NextDouble() >= rate_) {
      mask_.data()[i] = keep_scale;
      output->data()[i] = input.data()[i] * keep_scale;
    }
  }
}

void DropoutLayer::ForwardInference(const Matrix& input,
                                    Matrix* output) const {
  output->Resize(input.rows(), input.cols());
  std::copy(input.data(), input.data() + input.size(), output->data());
}

void DropoutLayer::Backward(const Matrix& grad_output, Matrix* grad_input) {
  grad_input->Resize(grad_output.rows(), grad_output.cols());
  if (!training_ || rate_ == 0.0) {
    std::copy(grad_output.data(), grad_output.data() + grad_output.size(),
              grad_input->data());
    return;
  }
  LEAPME_CHECK_EQ(grad_output.size(), mask_.size());
  for (size_t i = 0; i < grad_output.size(); ++i) {
    grad_input->data()[i] = grad_output.data()[i] * mask_.data()[i];
  }
}

void TanhLayer::Forward(const Matrix& input, Matrix* output) {
  output->Resize(input.rows(), input.cols());
  for (size_t i = 0; i < input.size(); ++i) {
    output->data()[i] = std::tanh(input.data()[i]);
  }
  last_output_ = *output;
}

void TanhLayer::ForwardInference(const Matrix& input, Matrix* output) const {
  output->Resize(input.rows(), input.cols());
  for (size_t i = 0; i < input.size(); ++i) {
    output->data()[i] = std::tanh(input.data()[i]);
  }
}

void TanhLayer::Backward(const Matrix& grad_output, Matrix* grad_input) {
  LEAPME_CHECK_EQ(grad_output.rows(), last_output_.rows());
  LEAPME_CHECK_EQ(grad_output.cols(), last_output_.cols());
  grad_input->Resize(grad_output.rows(), grad_output.cols());
  for (size_t i = 0; i < grad_output.size(); ++i) {
    float y = last_output_.data()[i];
    grad_input->data()[i] = grad_output.data()[i] * (1.0f - y * y);
  }
}

}  // namespace leapme::nn
