#ifndef LEAPME_NN_MATRIX_H_
#define LEAPME_NN_MATRIX_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/kernels/aligned.h"

namespace leapme::nn {

/// Dense row-major float matrix — the numeric workhorse of the NN library.
/// Deliberately minimal: shape, element access, and the handful of BLAS-like
/// kernels the MLP needs (GEMM with optional transposes, row/column
/// reductions, elementwise ops).
///
/// Storage is 64-byte aligned (kernels::kStorageAlignment): data() — and
/// therefore row 0 — always starts on a cache-line boundary, so the
/// vectorized kernel layer never straddles a vector boundary on its first
/// element. Interior rows are only aligned when cols() is a multiple of
/// 16; kernels use unaligned loads and rely on the base alignment for
/// cache-friendliness, not correctness.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  /// rows x cols matrix initialized from `values` (row-major,
  /// size must equal rows*cols).
  Matrix(size_t rows, size_t cols, std::vector<float> values);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  float operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// View of row `r`.
  std::span<float> row(size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const float> row(size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  /// Reshapes to rows x cols, discarding contents (zero-filled).
  void Resize(size_t rows, size_t cols);

  /// Sets every element to `value`.
  void Fill(float value);

  /// Returns a new matrix holding rows [begin, end) of this matrix.
  Matrix RowSlice(size_t begin, size_t end) const;

  /// this += other (same shape).
  void AddInPlace(const Matrix& other);

  /// this *= s.
  void ScaleInPlace(float s);

  /// Frobenius-norm squared.
  double SquaredNorm() const;

  /// Human-readable shape string "RxC".
  std::string ShapeString() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  kernels::AlignedFloatVector data_;
};

/// out = a * b. Shapes: (n x k) * (k x m) -> (n x m). `out` is resized.
/// Above ~2M multiply-accumulates the work is row-partitioned across the
/// global thread pool (common/parallel.h); the parallel and sequential
/// paths share one per-row kernel, so results are bit-identical at any
/// thread count. The same applies to the transposed variants below.
/// Inner loops run on the dispatched kernel layer (common/kernels), whose
/// canonical reduction order keeps results bit-identical across the
/// scalar and AVX2 paths as well. NaN/Inf anywhere in either operand
/// propagates to the affected output cells (no zero-multiplier
/// shortcuts).
void Gemm(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a^T * b. Shapes: (k x n)^T * (k x m) -> (n x m).
void GemmTransposeA(const Matrix& a, const Matrix& b, Matrix* out);

/// out = a * b^T. Shapes: (n x k) * (m x k)^T -> (n x m). Runs the
/// cache-blocked, register-tiled kernel-layer GEMM under the row
/// partitioning.
void GemmTransposeB(const Matrix& a, const Matrix& b, Matrix* out);

/// out[c] = sum over rows of m(r, c). `out` is resized to m.cols().
void ColumnSums(const Matrix& m, std::vector<float>* out);

/// Adds `bias` (length = m.cols()) to every row of `m`.
void AddRowVector(Matrix* m, std::span<const float> bias);

}  // namespace leapme::nn

#endif  // LEAPME_NN_MATRIX_H_
