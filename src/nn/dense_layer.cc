#include "nn/dense_layer.h"

#include <cmath>

#include "common/logging.h"

namespace leapme::nn {

DenseLayer::DenseLayer(size_t input_dim, size_t output_dim, Rng& rng)
    : weights_(input_dim, output_dim),
      bias_(1, output_dim),
      grad_weights_(input_dim, output_dim),
      grad_bias_(1, output_dim) {
  // He-uniform: U(-limit, limit) with limit = sqrt(6 / fan_in).
  const double limit = std::sqrt(6.0 / static_cast<double>(input_dim));
  for (size_t i = 0; i < input_dim; ++i) {
    for (size_t j = 0; j < output_dim; ++j) {
      weights_(i, j) = static_cast<float>(rng.NextDouble(-limit, limit));
    }
  }
}

DenseLayer::DenseLayer(Matrix weights, std::vector<float> bias)
    : weights_(std::move(weights)) {
  const size_t bias_width = bias.size();
  bias_ = Matrix(1, bias_width, std::move(bias));
  grad_weights_ = Matrix(weights_.rows(), weights_.cols());
  grad_bias_ = Matrix(1, bias_.cols());
}

void DenseLayer::Forward(const Matrix& input, Matrix* output) {
  LEAPME_CHECK_EQ(input.cols(), weights_.rows());
  last_input_ = input;
  Gemm(input, weights_, output);
  AddRowVector(output, bias_.row(0));
}

void DenseLayer::ForwardInference(const Matrix& input, Matrix* output) const {
  LEAPME_CHECK_EQ(input.cols(), weights_.rows());
  Gemm(input, weights_, output);
  AddRowVector(output, bias_.row(0));
}

void DenseLayer::Backward(const Matrix& grad_output, Matrix* grad_input) {
  LEAPME_CHECK_EQ(grad_output.cols(), weights_.cols());
  LEAPME_CHECK_EQ(grad_output.rows(), last_input_.rows());
  GemmTransposeA(last_input_, grad_output, &grad_weights_);
  std::vector<float> bias_grad;
  ColumnSums(grad_output, &bias_grad);
  const size_t bias_width = bias_grad.size();
  grad_bias_ = Matrix(1, bias_width, std::move(bias_grad));
  GemmTransposeB(grad_output, weights_, grad_input);
}

std::vector<Parameter> DenseLayer::Parameters() {
  return {
      {"weights", &weights_, &grad_weights_},
      {"bias", &bias_, &grad_bias_},
  };
}

size_t DenseLayer::OutputDim(size_t input_dim) const {
  LEAPME_CHECK_EQ(input_dim, weights_.rows());
  return weights_.cols();
}

}  // namespace leapme::nn
