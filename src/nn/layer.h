#ifndef LEAPME_NN_LAYER_H_
#define LEAPME_NN_LAYER_H_

#include <string>
#include <vector>

#include "nn/matrix.h"

namespace leapme::nn {

/// A named parameter tensor with its gradient, exposed by layers so that
/// optimizers can update them uniformly.
struct Parameter {
  std::string name;
  Matrix* value = nullptr;
  Matrix* gradient = nullptr;
};

/// One differentiable layer of a feed-forward network.
///
/// Protocol: Forward stores whatever it needs for the following Backward
/// call (layers are stateful across one forward/backward pair, which is the
/// standard mini-batch training pattern).
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes `output` from `input` (both batch-major: one row per sample).
  virtual void Forward(const Matrix& input, Matrix* output) = 0;

  /// Given dLoss/dOutput, computes dLoss/dInput and accumulates parameter
  /// gradients (overwriting them; gradients are per-batch).
  virtual void Backward(const Matrix& grad_output, Matrix* grad_input) = 0;

  /// Inference-mode forward pass that leaves the layer untouched: no
  /// cached activations, no training-state dependence (dropout is the
  /// identity). Because it is const and writes only `output`, concurrent
  /// calls on one layer are safe — the parallel batched scorer shares one
  /// trained network across pool threads through this path. Arithmetic is
  /// identical to Forward in inference mode.
  virtual void ForwardInference(const Matrix& input,
                                Matrix* output) const = 0;

  /// Trainable parameters (empty for activations).
  virtual std::vector<Parameter> Parameters() { return {}; }

  /// Switches between training and inference behaviour (dropout noise on
  /// or off). No-op for most layers.
  virtual void SetTraining(bool training) { (void)training; }

  /// Layer type tag used by serialization ("dense", "relu", ...).
  virtual std::string TypeName() const = 0;

  /// Output width given input width; used for shape validation.
  virtual size_t OutputDim(size_t input_dim) const = 0;
};

}  // namespace leapme::nn

#endif  // LEAPME_NN_LAYER_H_
