#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace leapme::nn {

void Softmax(const Matrix& logits, Matrix* probabilities) {
  probabilities->Resize(logits.rows(), logits.cols());
  for (size_t r = 0; r < logits.rows(); ++r) {
    const float* in = logits.data() + r * logits.cols();
    float* out = probabilities->data() + r * logits.cols();
    float max_logit = in[0];
    for (size_t c = 1; c < logits.cols(); ++c) {
      max_logit = std::max(max_logit, in[c]);
    }
    float sum = 0.0f;
    for (size_t c = 0; c < logits.cols(); ++c) {
      out[c] = std::exp(in[c] - max_logit);
      sum += out[c];
    }
    for (size_t c = 0; c < logits.cols(); ++c) {
      out[c] /= sum;
    }
  }
}

double SoftmaxCrossEntropy::Forward(const Matrix& logits,
                                    const std::vector<int32_t>& labels,
                                    Matrix* probabilities) const {
  LEAPME_CHECK_EQ(logits.rows(), labels.size());
  Softmax(logits, probabilities);
  double loss = 0.0;
  constexpr float kEpsilon = 1e-12f;
  for (size_t r = 0; r < logits.rows(); ++r) {
    auto label = static_cast<size_t>(labels[r]);
    LEAPME_CHECK_LT(label, logits.cols());
    loss -= std::log(
        std::max((*probabilities)(r, label), kEpsilon));
  }
  return loss / static_cast<double>(logits.rows());
}

void SoftmaxCrossEntropy::Backward(const Matrix& probabilities,
                                   const std::vector<int32_t>& labels,
                                   Matrix* grad_logits) const {
  LEAPME_CHECK_EQ(probabilities.rows(), labels.size());
  *grad_logits = probabilities;
  const float inv_batch = 1.0f / static_cast<float>(probabilities.rows());
  for (size_t r = 0; r < probabilities.rows(); ++r) {
    auto label = static_cast<size_t>(labels[r]);
    (*grad_logits)(r, label) -= 1.0f;
  }
  grad_logits->ScaleInPlace(inv_batch);
}

}  // namespace leapme::nn
