#ifndef LEAPME_NN_ACTIVATION_H_
#define LEAPME_NN_ACTIVATION_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "nn/layer.h"

namespace leapme::nn {

/// Rectified linear unit: output = max(0, input), applied elementwise.
class ReluLayer final : public Layer {
 public:
  void Forward(const Matrix& input, Matrix* output) override;
  void Backward(const Matrix& grad_output, Matrix* grad_input) override;
  void ForwardInference(const Matrix& input, Matrix* output) const override;
  std::string TypeName() const override { return "relu"; }
  size_t OutputDim(size_t input_dim) const override { return input_dim; }

 private:
  Matrix mask_;  // 1 where input > 0, cached for Backward
};

/// Inverted dropout: during training each activation is zeroed with
/// probability `rate` and survivors are scaled by 1/(1-rate); at inference
/// the layer is the identity. Provided as a regularization ablation — the
/// paper's network trains without dropout.
class DropoutLayer final : public Layer {
 public:
  /// `rate` in [0, 1); seeds an internal generator for the masks.
  explicit DropoutLayer(double rate, uint64_t seed = 11);

  void Forward(const Matrix& input, Matrix* output) override;
  void Backward(const Matrix& grad_output, Matrix* grad_input) override;
  void ForwardInference(const Matrix& input, Matrix* output) const override;
  std::string TypeName() const override { return "dropout"; }
  size_t OutputDim(size_t input_dim) const override { return input_dim; }
  void SetTraining(bool training) override { training_ = training; }

  double rate() const { return rate_; }

 private:
  double rate_;
  bool training_ = true;
  Rng rng_;
  Matrix mask_;
};

/// Hyperbolic tangent activation (provided for ablations; the paper's
/// network uses ReLU-style hidden layers).
class TanhLayer final : public Layer {
 public:
  void Forward(const Matrix& input, Matrix* output) override;
  void Backward(const Matrix& grad_output, Matrix* grad_input) override;
  void ForwardInference(const Matrix& input, Matrix* output) const override;
  std::string TypeName() const override { return "tanh"; }
  size_t OutputDim(size_t input_dim) const override { return input_dim; }

 private:
  Matrix last_output_;
};

}  // namespace leapme::nn

#endif  // LEAPME_NN_ACTIVATION_H_
