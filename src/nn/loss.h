#ifndef LEAPME_NN_LOSS_H_
#define LEAPME_NN_LOSS_H_

#include <cstdint>
#include <vector>

#include "nn/matrix.h"

namespace leapme::nn {

/// Softmax cross-entropy over class logits. The LEAPME network ends in a
/// two-neuron layer whose softmax-normalized positive output doubles as the
/// pair similarity score (paper §IV-D).
class SoftmaxCrossEntropy {
 public:
  /// Computes row-wise softmax of `logits` into `probabilities` and returns
  /// the mean cross-entropy against integer `labels` (values in
  /// [0, num_classes)).
  double Forward(const Matrix& logits, const std::vector<int32_t>& labels,
                 Matrix* probabilities) const;

  /// Gradient of the mean loss w.r.t. the logits:
  /// (softmax - onehot) / batch_size.
  void Backward(const Matrix& probabilities,
                const std::vector<int32_t>& labels, Matrix* grad_logits) const;
};

/// Row-wise softmax (numerically stabilized by max subtraction).
void Softmax(const Matrix& logits, Matrix* probabilities);

}  // namespace leapme::nn

#endif  // LEAPME_NN_LOSS_H_
