#include "nn/mlp.h"

#include <fstream>

#include "common/logging.h"
#include "common/string_util.h"
#include "nn/activation.h"
#include "nn/dense_layer.h"

namespace leapme::nn {

void Mlp::AddDense(size_t input_dim, size_t output_dim, Rng& rng) {
  layers_.push_back(std::make_unique<DenseLayer>(input_dim, output_dim, rng));
}

void Mlp::AddLayer(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
}

void Mlp::AddRelu() { layers_.push_back(std::make_unique<ReluLayer>()); }

void Mlp::AddDropout(double rate, uint64_t seed) {
  layers_.push_back(std::make_unique<DropoutLayer>(rate, seed));
}

void Mlp::Forward(const Matrix& input, Matrix* logits) {
  LEAPME_CHECK(!layers_.empty());
  activations_.resize(layers_.size());
  const Matrix* current = &input;
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->Forward(*current, &activations_[i]);
    current = &activations_[i];
  }
  *logits = activations_.back();
}

void Mlp::Predict(const Matrix& input, Matrix* probabilities) {
  for (auto& layer : layers_) {
    layer->SetTraining(false);
  }
  Matrix logits;
  Forward(input, &logits);
  Softmax(logits, probabilities);
}

void Mlp::Infer(const Matrix& input, Matrix* probabilities) const {
  LEAPME_CHECK(!layers_.empty());
  // Ping-pong between two local buffers; no member state is written.
  Matrix buffers[2];
  const Matrix* current = &input;
  for (size_t i = 0; i < layers_.size(); ++i) {
    Matrix* next = &buffers[i % 2];
    layers_[i]->ForwardInference(*current, next);
    current = next;
  }
  Softmax(*current, probabilities);
}

double Mlp::EvaluateLoss(const Matrix& input,
                         const std::vector<int32_t>& labels) {
  for (auto& layer : layers_) {
    layer->SetTraining(false);
  }
  Matrix logits;
  Forward(input, &logits);
  return loss_.Forward(logits, labels, &probabilities_);
}

double Mlp::TrainBatch(const Matrix& input,
                       const std::vector<int32_t>& labels,
                       Optimizer& optimizer) {
  for (auto& layer : layers_) {
    layer->SetTraining(true);
  }
  Matrix logits;
  Forward(input, &logits);
  double loss = loss_.Forward(logits, labels, &probabilities_);
  loss_.Backward(probabilities_, labels, &grad_);
  for (size_t i = layers_.size(); i-- > 0;) {
    layers_[i]->Backward(grad_, &grad_scratch_);
    std::swap(grad_, grad_scratch_);
  }
  optimizer.Step(Parameters());
  return loss;
}

std::vector<Parameter> Mlp::Parameters() {
  std::vector<Parameter> parameters;
  for (auto& layer : layers_) {
    for (Parameter& p : layer->Parameters()) {
      parameters.push_back(p);
    }
  }
  return parameters;
}

Mlp BuildMlp(size_t input_dim, const std::vector<size_t>& hidden_sizes,
             size_t num_classes, Rng& rng, double dropout_rate) {
  Mlp mlp;
  size_t current = input_dim;
  for (size_t hidden : hidden_sizes) {
    mlp.AddDense(current, hidden, rng);
    mlp.AddRelu();
    if (dropout_rate > 0.0) {
      mlp.AddDropout(dropout_rate, rng.Next());
    }
    current = hidden;
  }
  mlp.AddDense(current, num_classes, rng);
  return mlp;
}

Status SaveMlp(const Mlp& mlp, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  // Enough digits that every weight parses back to the exact same value —
  // a save/load round trip must not perturb scores.
  out.precision(17);
  out << "leapme-mlp 1\n";
  out << mlp.layer_count() << "\n";
  for (size_t i = 0; i < mlp.layer_count(); ++i) {
    const Layer& layer = mlp.layer(i);
    out << layer.TypeName() << "\n";
    if (layer.TypeName() == "dropout") {
      out << static_cast<const DropoutLayer&>(layer).rate() << "\n";
    } else if (layer.TypeName() == "dense") {
      const auto& dense = static_cast<const DenseLayer&>(layer);
      out << dense.input_dim() << " " << dense.output_dim() << "\n";
      const Matrix& w = dense.weights();
      for (size_t r = 0; r < w.rows(); ++r) {
        for (size_t c = 0; c < w.cols(); ++c) {
          out << w(r, c) << (c + 1 == w.cols() ? '\n' : ' ');
        }
      }
      const Matrix& b = dense.bias();
      for (size_t c = 0; c < b.cols(); ++c) {
        out << b(0, c) << (c + 1 == b.cols() ? '\n' : ' ');
      }
    }
  }
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

StatusOr<Mlp> LoadMlp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open: " + path);
  }
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != "leapme-mlp" || version != 1) {
    return Status::Corruption("bad model header in " + path);
  }
  size_t layer_count = 0;
  in >> layer_count;
  // Bound sizes read from disk before they drive allocations: a corrupt
  // or truncated file must come back as a Status, never as a bad_alloc.
  constexpr size_t kMaxLayers = 1024;
  constexpr size_t kMaxDenseDim = 1 << 20;
  if (!in || layer_count > kMaxLayers) {
    return Status::Corruption("bad layer count in " + path);
  }
  Mlp mlp;
  for (size_t i = 0; i < layer_count; ++i) {
    std::string type;
    in >> type;
    if (type == "relu") {
      mlp.AddRelu();
    } else if (type == "dropout") {
      double rate = 0.0;
      in >> rate;
      if (!in || rate < 0.0 || rate >= 1.0) {
        return Status::Corruption("bad dropout rate in " + path);
      }
      mlp.AddDropout(rate);
    } else if (type == "tanh") {
      mlp.AddLayer(std::make_unique<TanhLayer>());
    } else if (type == "dense") {
      size_t input_dim = 0;
      size_t output_dim = 0;
      in >> input_dim >> output_dim;
      if (!in || input_dim == 0 || output_dim == 0 ||
          input_dim > kMaxDenseDim || output_dim > kMaxDenseDim ||
          input_dim * output_dim > kMaxDenseDim) {
        return Status::Corruption("bad dense shape in " + path);
      }
      Matrix weights(input_dim, output_dim);
      for (size_t r = 0; r < input_dim; ++r) {
        for (size_t c = 0; c < output_dim; ++c) {
          in >> weights(r, c);
        }
      }
      std::vector<float> bias(output_dim);
      for (float& value : bias) {
        in >> value;
      }
      if (!in) {
        return Status::Corruption("truncated dense layer in " + path);
      }
      mlp.AddLayer(std::make_unique<DenseLayer>(std::move(weights),
                                                std::move(bias)));
    } else {
      return Status::Corruption("unknown layer type '" + type + "' in " +
                                path);
    }
  }
  return mlp;
}

}  // namespace leapme::nn
