#include "nn/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace leapme::nn {

void SgdOptimizer::Step(const std::vector<Parameter>& parameters) {
  const auto lr = static_cast<float>(learning_rate_);
  for (const Parameter& p : parameters) {
    float* value = p.value->data();
    const float* grad = p.gradient->data();
    for (size_t i = 0; i < p.value->size(); ++i) {
      value[i] -= lr * grad[i];
    }
  }
}

void MomentumOptimizer::Step(const std::vector<Parameter>& parameters) {
  const auto lr = static_cast<float>(learning_rate_);
  const auto mu = static_cast<float>(momentum_);
  for (const Parameter& p : parameters) {
    Matrix& v = velocity_[p.value];
    if (v.size() != p.value->size()) {
      v.Resize(p.value->rows(), p.value->cols());
    }
    float* value = p.value->data();
    float* vel = v.data();
    const float* grad = p.gradient->data();
    for (size_t i = 0; i < p.value->size(); ++i) {
      vel[i] = mu * vel[i] - lr * grad[i];
      value[i] += vel[i];
    }
  }
}

void AdamOptimizer::Step(const std::vector<Parameter>& parameters) {
  ++step_count_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  const auto lr = static_cast<float>(learning_rate_);
  const auto b1 = static_cast<float>(beta1_);
  const auto b2 = static_cast<float>(beta2_);
  const auto eps = static_cast<float>(epsilon_);
  const auto inv_bias1 = static_cast<float>(1.0 / bias1);
  const auto inv_bias2 = static_cast<float>(1.0 / bias2);
  for (const Parameter& p : parameters) {
    Moments& moments = moments_[p.value];
    if (moments.m.size() != p.value->size()) {
      moments.m.Resize(p.value->rows(), p.value->cols());
      moments.v.Resize(p.value->rows(), p.value->cols());
    }
    float* value = p.value->data();
    float* m = moments.m.data();
    float* v = moments.v.data();
    const float* grad = p.gradient->data();
    for (size_t i = 0; i < p.value->size(); ++i) {
      m[i] = b1 * m[i] + (1.0f - b1) * grad[i];
      v[i] = b2 * v[i] + (1.0f - b2) * grad[i] * grad[i];
      float m_hat = m[i] * inv_bias1;
      float v_hat = v[i] * inv_bias2;
      value[i] -= lr * m_hat / (std::sqrt(v_hat) + eps);
    }
  }
}

std::unique_ptr<Optimizer> MakeOptimizer(OptimizerKind kind,
                                         double learning_rate) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return std::make_unique<SgdOptimizer>(learning_rate);
    case OptimizerKind::kMomentum:
      return std::make_unique<MomentumOptimizer>(learning_rate);
    case OptimizerKind::kAdam:
      return std::make_unique<AdamOptimizer>(learning_rate);
  }
  LEAPME_LOG(Fatal) << "unknown optimizer kind";
  return nullptr;
}

}  // namespace leapme::nn
