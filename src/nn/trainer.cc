#include "nn/trainer.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/string_util.h"

namespace leapme::nn {

StatusOr<std::vector<double>> Trainer::Fit(
    Mlp& mlp, const Matrix& inputs,
    const std::vector<int32_t>& labels) const {
  if (inputs.rows() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (inputs.rows() != labels.size()) {
    return Status::InvalidArgument(
        StrFormat("inputs has %zu rows but labels has %zu entries",
                  inputs.rows(), labels.size()));
  }
  if (options_.batch_size == 0) {
    return Status::InvalidArgument("batch size must be positive");
  }
  if (options_.schedule.empty()) {
    return Status::InvalidArgument("empty learning-rate schedule");
  }
  if (options_.validation_fraction < 0.0 ||
      options_.validation_fraction >= 1.0) {
    return Status::InvalidArgument("validation_fraction must be in [0, 1)");
  }

  const size_t n = inputs.rows();
  const size_t batch = options_.batch_size;
  std::unique_ptr<Optimizer> optimizer =
      MakeOptimizer(options_.optimizer, options_.schedule.front().learning_rate);

  Rng rng(options_.shuffle_seed);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});

  // Optional validation holdout for early stopping: the tail of one
  // initial shuffle.
  size_t train_count = n;
  Matrix validation_inputs;
  std::vector<int32_t> validation_labels;
  if (options_.validation_fraction > 0.0) {
    rng.Shuffle(order);
    auto holdout = static_cast<size_t>(options_.validation_fraction *
                                       static_cast<double>(n));
    holdout = std::min(holdout, n - 1);
    if (holdout > 0) {
      train_count = n - holdout;
      validation_inputs.Resize(holdout, inputs.cols());
      validation_labels.resize(holdout);
      for (size_t i = 0; i < holdout; ++i) {
        size_t src = order[train_count + i];
        std::copy(inputs.row(src).begin(), inputs.row(src).end(),
                  validation_inputs.row(i).begin());
        validation_labels[i] = labels[src];
      }
      order.resize(train_count);
    }
  }

  std::vector<double> epoch_losses;
  Matrix batch_inputs;
  std::vector<int32_t> batch_labels;
  double best_validation = std::numeric_limits<double>::infinity();
  size_t epochs_without_improvement = 0;

  for (const LrPhase& phase : options_.schedule) {
    optimizer->set_learning_rate(phase.learning_rate);
    for (size_t epoch = 0; epoch < phase.epochs; ++epoch) {
      if (options_.shuffle) {
        rng.Shuffle(order);
      }
      double loss_sum = 0.0;
      size_t batches = 0;
      for (size_t start = 0; start < train_count; start += batch) {
        size_t end = std::min(start + batch, train_count);
        size_t rows = end - start;
        batch_inputs.Resize(rows, inputs.cols());
        batch_labels.resize(rows);
        for (size_t i = 0; i < rows; ++i) {
          size_t src = order[start + i];
          std::copy(inputs.row(src).begin(), inputs.row(src).end(),
                    batch_inputs.row(i).begin());
          batch_labels[i] = labels[src];
        }
        loss_sum += mlp.TrainBatch(batch_inputs, batch_labels, *optimizer);
        ++batches;
      }
      epoch_losses.push_back(loss_sum / static_cast<double>(batches));

      if (validation_labels.empty()) continue;
      double validation_loss =
          mlp.EvaluateLoss(validation_inputs, validation_labels);
      if (validation_loss + 1e-6 < best_validation) {
        best_validation = validation_loss;
        epochs_without_improvement = 0;
      } else if (++epochs_without_improvement >= options_.patience) {
        return epoch_losses;  // early stop
      }
    }
  }
  return epoch_losses;
}

}  // namespace leapme::nn
