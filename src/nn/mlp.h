#ifndef LEAPME_NN_MLP_H_
#define LEAPME_NN_MLP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status_or.h"
#include "nn/layer.h"
#include "nn/loss.h"
#include "nn/matrix.h"
#include "nn/optimizer.h"

namespace leapme::nn {

/// Sequential feed-forward network (multi-layer perceptron).
///
/// The LEAPME classifier (paper §IV-D) is an Mlp with two ReLU hidden
/// layers of sizes 128 and 64 and a two-neuron softmax output whose
/// positive probability serves as the pair similarity score.
class Mlp {
 public:
  Mlp() = default;

  // Move-only: layers hold per-batch state and are not sharable.
  Mlp(Mlp&&) noexcept = default;
  Mlp& operator=(Mlp&&) noexcept = default;
  Mlp(const Mlp&) = delete;
  Mlp& operator=(const Mlp&) = delete;

  /// Appends a fully connected layer (He-uniform init from `rng`).
  void AddDense(size_t input_dim, size_t output_dim, Rng& rng);

  /// Appends an externally constructed layer (used by deserialization).
  void AddLayer(std::unique_ptr<Layer> layer);

  /// Appends a ReLU activation.
  void AddRelu();

  /// Appends an inverted-dropout layer with the given drop rate.
  void AddDropout(double rate, uint64_t seed = 11);

  size_t layer_count() const { return layers_.size(); }
  Layer& layer(size_t i) { return *layers_[i]; }
  const Layer& layer(size_t i) const { return *layers_[i]; }

  /// Forward pass; returns the raw logits (batch x num_classes).
  void Forward(const Matrix& input, Matrix* logits);

  /// Forward + softmax; returns class probabilities.
  void Predict(const Matrix& input, Matrix* probabilities);

  /// Forward + softmax in inference mode through the layers' const
  /// ForwardInference path. Unlike Predict it touches no layer or scratch
  /// state, so concurrent Infer calls on one trained network are safe —
  /// this is what the parallel batched scorer uses. Arithmetic (and hence
  /// output bits) matches Predict for dropout-free networks; with dropout
  /// layers both run the identity at inference.
  void Infer(const Matrix& input, Matrix* probabilities) const;

  /// Mean loss on (inputs, labels) in inference mode, without updating
  /// any parameters (used for validation-based early stopping).
  double EvaluateLoss(const Matrix& input, const std::vector<int32_t>& labels);

  /// One optimization step on a mini-batch. Returns the batch loss.
  double TrainBatch(const Matrix& input, const std::vector<int32_t>& labels,
                    Optimizer& optimizer);

  /// All trainable parameters across layers.
  std::vector<Parameter> Parameters();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  SoftmaxCrossEntropy loss_;
  // Scratch buffers reused across batches.
  std::vector<Matrix> activations_;
  Matrix probabilities_;
  Matrix grad_;
  Matrix grad_scratch_;
};

/// Builds the paper's architecture: input -> Dense(h1) -> ReLU ->
/// Dense(h2) -> ReLU -> ... -> Dense(num_classes). When `dropout_rate`
/// is positive, a dropout layer follows each ReLU (regularization
/// ablation; the paper trains without dropout).
Mlp BuildMlp(size_t input_dim, const std::vector<size_t>& hidden_sizes,
             size_t num_classes, Rng& rng, double dropout_rate = 0.0);

/// Serializes the network to a self-describing text file.
Status SaveMlp(const Mlp& mlp, const std::string& path);

/// Loads a network previously written by SaveMlp.
StatusOr<Mlp> LoadMlp(const std::string& path);

}  // namespace leapme::nn

#endif  // LEAPME_NN_MLP_H_
