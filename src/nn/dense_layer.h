#ifndef LEAPME_NN_DENSE_LAYER_H_
#define LEAPME_NN_DENSE_LAYER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/layer.h"

namespace leapme::nn {

/// Fully connected layer: output = input * W + b, with W of shape
/// (input_dim x output_dim) and bias b of length output_dim.
class DenseLayer final : public Layer {
 public:
  /// Creates the layer with He-uniform initialized weights (suited to the
  /// ReLU activations the LEAPME network uses) and zero bias.
  DenseLayer(size_t input_dim, size_t output_dim, Rng& rng);

  /// Creates the layer with explicit weights/bias (used by deserialization).
  DenseLayer(Matrix weights, std::vector<float> bias);

  void Forward(const Matrix& input, Matrix* output) override;
  void Backward(const Matrix& grad_output, Matrix* grad_input) override;
  void ForwardInference(const Matrix& input, Matrix* output) const override;
  std::vector<Parameter> Parameters() override;
  std::string TypeName() const override { return "dense"; }
  size_t OutputDim(size_t input_dim) const override;

  size_t input_dim() const { return weights_.rows(); }
  size_t output_dim() const { return weights_.cols(); }
  const Matrix& weights() const { return weights_; }
  const Matrix& bias() const { return bias_; }

 private:
  Matrix weights_;       // input_dim x output_dim
  Matrix bias_;          // 1 x output_dim
  Matrix grad_weights_;  // same shape as weights_
  Matrix grad_bias_;     // same shape as bias_
  Matrix last_input_;    // cached for Backward
};

}  // namespace leapme::nn

#endif  // LEAPME_NN_DENSE_LAYER_H_
