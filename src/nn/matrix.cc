#include "nn/matrix.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace leapme::nn {

Matrix::Matrix(size_t rows, size_t cols, std::vector<float> values)
    : rows_(rows), cols_(cols), data_(std::move(values)) {
  LEAPME_CHECK_EQ(data_.size(), rows * cols);
}

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::RowSlice(size_t begin, size_t end) const {
  LEAPME_CHECK_LE(begin, end);
  LEAPME_CHECK_LE(end, rows_);
  Matrix out(end - begin, cols_);
  std::copy(data_.begin() + begin * cols_, data_.begin() + end * cols_,
            out.data_.begin());
  return out;
}

void Matrix::AddInPlace(const Matrix& other) {
  LEAPME_CHECK_EQ(rows_, other.rows_);
  LEAPME_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += other.data_[i];
  }
}

void Matrix::ScaleInPlace(float s) {
  for (float& value : data_) {
    value *= s;
  }
}

double Matrix::SquaredNorm() const {
  double sum = 0.0;
  for (float value : data_) {
    sum += static_cast<double>(value) * static_cast<double>(value);
  }
  return sum;
}

std::string Matrix::ShapeString() const {
  return StrFormat("%zux%zu", rows_, cols_);
}

void Gemm(const Matrix& a, const Matrix& b, Matrix* out) {
  LEAPME_CHECK_EQ(a.cols(), b.rows());
  const size_t n = a.rows();
  const size_t k = a.cols();
  const size_t m = b.cols();
  out->Resize(n, m);
  // i-k-j loop order: the inner loop is a contiguous AXPY over B and OUT
  // rows, which GCC auto-vectorizes.
  for (size_t i = 0; i < n; ++i) {
    const float* a_row = a.data() + i * k;
    float* out_row = out->data() + i * m;
    for (size_t kk = 0; kk < k; ++kk) {
      const float a_ik = a_row[kk];
      if (a_ik == 0.0f) continue;
      const float* b_row = b.data() + kk * m;
      for (size_t j = 0; j < m; ++j) {
        out_row[j] += a_ik * b_row[j];
      }
    }
  }
}

void GemmTransposeA(const Matrix& a, const Matrix& b, Matrix* out) {
  LEAPME_CHECK_EQ(a.rows(), b.rows());
  const size_t k = a.rows();
  const size_t n = a.cols();
  const size_t m = b.cols();
  out->Resize(n, m);
  for (size_t kk = 0; kk < k; ++kk) {
    const float* a_row = a.data() + kk * n;
    const float* b_row = b.data() + kk * m;
    for (size_t i = 0; i < n; ++i) {
      const float a_ki = a_row[i];
      if (a_ki == 0.0f) continue;
      float* out_row = out->data() + i * m;
      for (size_t j = 0; j < m; ++j) {
        out_row[j] += a_ki * b_row[j];
      }
    }
  }
}

void GemmTransposeB(const Matrix& a, const Matrix& b, Matrix* out) {
  LEAPME_CHECK_EQ(a.cols(), b.cols());
  const size_t n = a.rows();
  const size_t k = a.cols();
  const size_t m = b.rows();
  out->Resize(n, m);
  for (size_t i = 0; i < n; ++i) {
    const float* a_row = a.data() + i * k;
    float* out_row = out->data() + i * m;
    for (size_t j = 0; j < m; ++j) {
      const float* b_row = b.data() + j * k;
      float sum = 0.0f;
      for (size_t kk = 0; kk < k; ++kk) {
        sum += a_row[kk] * b_row[kk];
      }
      out_row[j] = sum;
    }
  }
}

void ColumnSums(const Matrix& m, std::vector<float>* out) {
  out->assign(m.cols(), 0.0f);
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.data() + r * m.cols();
    for (size_t c = 0; c < m.cols(); ++c) {
      (*out)[c] += row[c];
    }
  }
}

void AddRowVector(Matrix* m, std::span<const float> bias) {
  LEAPME_CHECK_EQ(m->cols(), bias.size());
  for (size_t r = 0; r < m->rows(); ++r) {
    float* row = m->data() + r * m->cols();
    for (size_t c = 0; c < m->cols(); ++c) {
      row[c] += bias[c];
    }
  }
}

}  // namespace leapme::nn
