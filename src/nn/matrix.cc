#include "nn/matrix.h"

#include <algorithm>

#include "common/kernels/kernels.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "common/string_util.h"

namespace leapme::nn {

namespace {

// The GEMMs fan out over output rows once the multiply-accumulate count
// amortizes a pool wakeup (a few microseconds). Both paths run the same
// per-row kernel, so sequential and parallel results are bit-identical.
constexpr size_t kGemmParallelMacs = size_t{1} << 21;  // ~2M mul-adds
constexpr size_t kGemmChunkMacs = size_t{1} << 18;     // ~256k per chunk

bool UseParallelGemm(size_t n, size_t k, size_t m) {
  return n > 1 && k * m > 0 && n * k * m >= kGemmParallelMacs;
}

size_t GemmRowGrain(size_t k, size_t m) {
  return std::max<size_t>(1, kGemmChunkMacs / std::max<size_t>(1, k * m));
}

// out rows [r0, r1) of a * b, i-k-j order: the inner loop is a contiguous
// AXPY over B and OUT rows on the dispatched kernel layer. Every
// multiplier is applied — a zero in A must still propagate NaN/Inf from
// the B row (0 * NaN = NaN), so there is deliberately no zero-skip here.
void GemmRows(const Matrix& a, const Matrix& b, Matrix* out, size_t r0,
              size_t r1) {
  const kernels::KernelTable& kernel = kernels::Active();
  const size_t k = a.cols();
  const size_t m = b.cols();
  for (size_t i = r0; i < r1; ++i) {
    const float* a_row = a.data() + i * k;
    float* out_row = out->data() + i * m;
    for (size_t kk = 0; kk < k; ++kk) {
      kernel.axpy(a_row[kk], b.data() + kk * m, out_row, m);
    }
  }
}

// out rows [r0, r1) of a^T * b. Accumulation runs over kk ascending per
// element, exactly like the k-outer sequential loop, so both orders
// produce identical bits; this i-outer form gives each thread a disjoint
// band of output rows. As in GemmRows, zero multipliers are not skipped
// so non-finite values in B always propagate.
void GemmTransposeARows(const Matrix& a, const Matrix& b, Matrix* out,
                        size_t r0, size_t r1) {
  const kernels::KernelTable& kernel = kernels::Active();
  const size_t k = a.rows();
  const size_t n = a.cols();
  const size_t m = b.cols();
  for (size_t i = r0; i < r1; ++i) {
    float* out_row = out->data() + i * m;
    for (size_t kk = 0; kk < k; ++kk) {
      kernel.axpy(a.data()[kk * n + i], b.data() + kk * m, out_row, m);
    }
  }
}

// out rows [r0, r1) of a * b^T (dot products of row pairs) on the
// blocked kernel-layer GEMM.
void GemmTransposeBRows(const Matrix& a, const Matrix& b, Matrix* out,
                        size_t r0, size_t r1) {
  const size_t k = a.cols();
  const size_t m = b.rows();
  kernels::Active().gemm_tb(a.data() + r0 * k, b.data(),
                            out->data() + r0 * m, r1 - r0, k, m);
}

}  // namespace

Matrix::Matrix(size_t rows, size_t cols, std::vector<float> values)
    : rows_(rows), cols_(cols), data_(values.begin(), values.end()) {
  LEAPME_CHECK_EQ(data_.size(), rows * cols);
}

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

void Matrix::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

Matrix Matrix::RowSlice(size_t begin, size_t end) const {
  LEAPME_CHECK_LE(begin, end);
  LEAPME_CHECK_LE(end, rows_);
  Matrix out(end - begin, cols_);
  std::copy(data_.begin() + begin * cols_, data_.begin() + end * cols_,
            out.data_.begin());
  return out;
}

void Matrix::AddInPlace(const Matrix& other) {
  LEAPME_CHECK_EQ(rows_, other.rows_);
  LEAPME_CHECK_EQ(cols_, other.cols_);
  kernels::Active().add(other.data_.data(), data_.data(), data_.size());
}

void Matrix::ScaleInPlace(float s) {
  kernels::Active().scale(s, data_.data(), data_.size());
}

double Matrix::SquaredNorm() const {
  double sum = 0.0;
  for (float value : data_) {
    sum += static_cast<double>(value) * static_cast<double>(value);
  }
  return sum;
}

std::string Matrix::ShapeString() const {
  return StrFormat("%zux%zu", rows_, cols_);
}

void Gemm(const Matrix& a, const Matrix& b, Matrix* out) {
  LEAPME_CHECK_EQ(a.cols(), b.rows());
  const size_t n = a.rows();
  const size_t k = a.cols();
  const size_t m = b.cols();
  out->Resize(n, m);
  if (UseParallelGemm(n, k, m)) {
    ParallelFor(0, n, GemmRowGrain(k, m),
                [&](size_t r0, size_t r1) { GemmRows(a, b, out, r0, r1); });
  } else {
    GemmRows(a, b, out, 0, n);
  }
}

void GemmTransposeA(const Matrix& a, const Matrix& b, Matrix* out) {
  LEAPME_CHECK_EQ(a.rows(), b.rows());
  const size_t k = a.rows();
  const size_t n = a.cols();
  const size_t m = b.cols();
  out->Resize(n, m);
  if (UseParallelGemm(n, k, m)) {
    ParallelFor(0, n, GemmRowGrain(k, m), [&](size_t r0, size_t r1) {
      GemmTransposeARows(a, b, out, r0, r1);
    });
    return;
  }
  // Sequential path keeps the cache-friendly k-outer order (contiguous
  // reads of A and B rows); per-element accumulation order matches the
  // row-banded parallel kernel, so results are bit-identical. No
  // zero-skip (see GemmRows).
  const kernels::KernelTable& kernel = kernels::Active();
  for (size_t kk = 0; kk < k; ++kk) {
    const float* a_row = a.data() + kk * n;
    const float* b_row = b.data() + kk * m;
    for (size_t i = 0; i < n; ++i) {
      kernel.axpy(a_row[i], b_row, out->data() + i * m, m);
    }
  }
}

void GemmTransposeB(const Matrix& a, const Matrix& b, Matrix* out) {
  LEAPME_CHECK_EQ(a.cols(), b.cols());
  const size_t n = a.rows();
  const size_t k = a.cols();
  const size_t m = b.rows();
  out->Resize(n, m);
  if (UseParallelGemm(n, k, m)) {
    ParallelFor(0, n, GemmRowGrain(k, m), [&](size_t r0, size_t r1) {
      GemmTransposeBRows(a, b, out, r0, r1);
    });
  } else {
    GemmTransposeBRows(a, b, out, 0, n);
  }
}

void ColumnSums(const Matrix& m, std::vector<float>* out) {
  out->assign(m.cols(), 0.0f);
  for (size_t r = 0; r < m.rows(); ++r) {
    const float* row = m.data() + r * m.cols();
    for (size_t c = 0; c < m.cols(); ++c) {
      (*out)[c] += row[c];
    }
  }
}

void AddRowVector(Matrix* m, std::span<const float> bias) {
  LEAPME_CHECK_EQ(m->cols(), bias.size());
  for (size_t r = 0; r < m->rows(); ++r) {
    float* row = m->data() + r * m->cols();
    for (size_t c = 0; c < m->cols(); ++c) {
      row[c] += bias[c];
    }
  }
}

}  // namespace leapme::nn
