#ifndef LEAPME_NN_OPTIMIZER_H_
#define LEAPME_NN_OPTIMIZER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/layer.h"
#include "nn/matrix.h"

namespace leapme::nn {

/// Gradient-descent optimizer interface. Learning rate is mutable so the
/// trainer can implement the paper's stepped schedule (1e-3 -> 1e-4 -> 1e-5)
/// without resetting optimizer state.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update to every parameter using its current gradient.
  virtual void Step(const std::vector<Parameter>& parameters) = 0;

  void set_learning_rate(double lr) { learning_rate_ = lr; }
  double learning_rate() const { return learning_rate_; }

 protected:
  explicit Optimizer(double learning_rate) : learning_rate_(learning_rate) {}

  double learning_rate_;
};

/// Plain stochastic gradient descent: p -= lr * g.
class SgdOptimizer final : public Optimizer {
 public:
  explicit SgdOptimizer(double learning_rate) : Optimizer(learning_rate) {}
  void Step(const std::vector<Parameter>& parameters) override;
};

/// SGD with classical momentum: v = mu*v - lr*g; p += v.
class MomentumOptimizer final : public Optimizer {
 public:
  MomentumOptimizer(double learning_rate, double momentum = 0.9)
      : Optimizer(learning_rate), momentum_(momentum) {}
  void Step(const std::vector<Parameter>& parameters) override;

 private:
  double momentum_;
  std::unordered_map<const Matrix*, Matrix> velocity_;
};

/// Adam (Kingma & Ba). The default optimizer for LEAPME training.
class AdamOptimizer final : public Optimizer {
 public:
  explicit AdamOptimizer(double learning_rate, double beta1 = 0.9,
                         double beta2 = 0.999, double epsilon = 1e-8)
      : Optimizer(learning_rate),
        beta1_(beta1),
        beta2_(beta2),
        epsilon_(epsilon) {}
  void Step(const std::vector<Parameter>& parameters) override;

 private:
  struct Moments {
    Matrix m;
    Matrix v;
  };

  double beta1_;
  double beta2_;
  double epsilon_;
  int64_t step_count_ = 0;
  std::unordered_map<const Matrix*, Moments> moments_;
};

/// Optimizer kinds selectable via TrainerOptions.
enum class OptimizerKind : int {
  kSgd = 0,
  kMomentum = 1,
  kAdam = 2,
};

/// Factory for the optimizer kinds.
std::unique_ptr<Optimizer> MakeOptimizer(OptimizerKind kind,
                                         double learning_rate);

}  // namespace leapme::nn

#endif  // LEAPME_NN_OPTIMIZER_H_
