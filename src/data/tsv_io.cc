#include "data/tsv_io.h"

#include <fstream>
#include <map>
#include <utility>

#include "common/string_util.h"

namespace leapme::data {

namespace {

std::string Sanitize(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') {
      c = ' ';
    }
  }
  return out;
}

}  // namespace

StatusOr<Dataset> ReadDatasetTsv(const std::string& path,
                                 std::string dataset_name) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open dataset file: " + path);
  }
  Dataset dataset(dataset_name.empty() ? path : std::move(dataset_name));

  std::map<std::string, SourceId> sources;
  // (source, property name) -> property id
  std::map<std::pair<SourceId, std::string>, PropertyId> properties;

  std::string line;
  size_t line_number = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitString(line, '\t');
    if (!saw_header) {
      saw_header = true;
      if (fields.size() < 4 || fields[0] != "source") {
        return Status::Corruption(
            StrFormat("%s:1: expected header 'source\\tentity\\tproperty\\t"
                      "value\\treference'",
                      path.c_str()));
      }
      continue;
    }
    if (fields.size() < 4 || fields.size() > 5) {
      return Status::Corruption(StrFormat("%s:%zu: expected 4-5 fields, got %zu",
                                          path.c_str(), line_number,
                                          fields.size()));
    }
    const std::string& source_name = fields[0];
    const std::string& entity = fields[1];
    const std::string& property_name = fields[2];
    const std::string& value = fields[3];
    std::string reference = fields.size() == 5 ? fields[4] : "";
    if (source_name.empty() || property_name.empty()) {
      return Status::Corruption(StrFormat(
          "%s:%zu: empty source or property", path.c_str(), line_number));
    }

    auto source_it = sources.find(source_name);
    if (source_it == sources.end()) {
      source_it =
          sources.emplace(source_name, dataset.AddSource(source_name)).first;
    }
    SourceId source = source_it->second;

    auto key = std::make_pair(source, property_name);
    auto property_it = properties.find(key);
    if (property_it == properties.end()) {
      PropertyId id =
          dataset.AddProperty(source, property_name, std::move(reference));
      property_it = properties.emplace(std::move(key), id).first;
    }
    dataset.AddInstance(property_it->second, entity, value);
  }
  if (!saw_header) {
    return Status::Corruption("empty dataset file: " + path);
  }
  return dataset;
}

Status WriteDatasetTsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << "source\tentity\tproperty\tvalue\treference\n";
  for (PropertyId id = 0; id < dataset.property_count(); ++id) {
    const PropertyRecord& record = dataset.property(id);
    const std::string source = Sanitize(dataset.source_name(record.source));
    const std::string name = Sanitize(record.name);
    const std::string reference = Sanitize(record.reference);
    for (const InstanceValue& instance : dataset.instances(id)) {
      out << source << '\t' << Sanitize(instance.entity) << '\t' << name
          << '\t' << Sanitize(instance.value) << '\t' << reference << '\n';
    }
  }
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace leapme::data
