#include "data/domain.h"

#include <set>

#include "text/tokenizer.h"

namespace leapme::data {

namespace {

// Shorthand builders keeping the ontology tables below readable.
//
// Surface-name convention (mirrors real product catalogs): the first names
// of each list are lexical *variants* of the canonical phrase (shared head
// word, added qualifier, abbreviation) that string-similarity matchers can
// catch; true synonyms with disjoint wording come last and are only
// reachable through embedding semantics. The generator picks names with
// strongly skewed (Zipf^2) popularity, so variants dominate and the
// synonym tail is the hard minority, as in the DI2KG/WDC data.

ReferenceProperty Num(std::string reference,
                      std::vector<std::string> names, double min, double max,
                      int decimals, std::vector<std::string> units,
                      double prevalence = 0.85, double fill = 0.9) {
  ReferenceProperty p;
  p.reference = std::move(reference);
  p.surface_names = std::move(names);
  NumericValueSpec spec;
  spec.min = min;
  spec.max = max;
  spec.decimals = decimals;
  spec.units = std::move(units);
  p.value = spec;
  p.source_prevalence = prevalence;
  p.fill_rate = fill;
  return p;
}

ReferenceProperty Price(std::string reference,
                        std::vector<std::string> names, double min,
                        double max, double prevalence = 0.9) {
  ReferenceProperty p = Num(std::move(reference), std::move(names), min, max,
                            2, {"$", "USD", "EUR"}, prevalence);
  std::get<NumericValueSpec>(p.value).unit_before = true;
  return p;
}

ReferenceProperty Enum(std::string reference,
                       std::vector<std::string> names,
                       std::vector<std::vector<std::string>> values,
                       double prevalence = 0.85, double fill = 0.9) {
  ReferenceProperty p;
  p.reference = std::move(reference);
  p.surface_names = std::move(names);
  EnumValueSpec spec;
  spec.values = std::move(values);
  p.value = spec;
  p.source_prevalence = prevalence;
  p.fill_rate = fill;
  return p;
}

ReferenceProperty Code(std::string reference,
                       std::vector<std::string> names,
                       std::vector<std::string> prefixes, int digits = 4,
                       double prevalence = 0.9) {
  ReferenceProperty p;
  p.reference = std::move(reference);
  p.surface_names = std::move(names);
  ModelCodeSpec spec;
  spec.prefixes = std::move(prefixes);
  spec.digits = digits;
  p.value = spec;
  p.source_prevalence = prevalence;
  return p;
}

ReferenceProperty Dims(std::string reference,
                       std::vector<std::string> names, double min,
                       double max, double prevalence = 0.7) {
  ReferenceProperty p;
  p.reference = std::move(reference);
  p.surface_names = std::move(names);
  DimensionsSpec spec;
  spec.min = min;
  spec.max = max;
  p.value = spec;
  p.source_prevalence = prevalence;
  return p;
}

ReferenceProperty Text(std::string reference,
                       std::vector<std::string> names,
                       std::vector<std::string> pool, double prevalence = 0.6) {
  ReferenceProperty p;
  p.reference = std::move(reference);
  p.surface_names = std::move(names);
  TextValueSpec spec;
  spec.word_pool = std::move(pool);
  p.value = spec;
  p.source_prevalence = prevalence;
  return p;
}

ReferenceProperty Flag(std::string reference,
                       std::vector<std::string> names,
                       std::vector<std::string> details = {},
                       double prevalence = 0.7) {
  ReferenceProperty p;
  p.reference = std::move(reference);
  p.surface_names = std::move(names);
  BooleanValueSpec spec;
  spec.true_details = std::move(details);
  p.value = spec;
  p.source_prevalence = prevalence;
  return p;
}

std::vector<std::string> CommonDecorationPrefixes() {
  return {"product", "item", "spec", "tech", "general"};
}

std::vector<std::string> CommonDecorationSuffixes() {
  return {"info", "details", "spec", "value", "data"};
}

DomainSpec BuildCameraDomain() {
  DomainSpec d;
  d.name = "cameras";
  d.decoration_prefixes = CommonDecorationPrefixes();
  d.decoration_suffixes = CommonDecorationSuffixes();
  d.properties = {
      Num("resolution",
          {"resolution", "camera resolution", "max resolution",
           "effective pixels", "megapixels"},
          8, 61, 1, {"MP", "megapixels", "million pixels"}, 0.95, 0.95),
      Enum("sensor type",
           {"sensor type", "sensor", "type of sensor", "imager"},
           {{"CMOS", "cmos sensor"},
            {"CCD", "ccd sensor"},
            {"BSI-CMOS", "backside illuminated cmos"},
            {"Foveon X3"}},
           0.8),
      Num("sensor size",
          {"sensor size", "sensor format", "size of sensor", "imager size"},
          0.3, 2.0, 2, {"inch", "\"", "in"}, 0.7),
      Num("iso", {"iso", "iso range", "max iso", "light sensitivity"}, 100,
          409600, 0, {}, 0.85),
      Enum("shutter speed",
           {"shutter speed", "max shutter speed", "shutter",
            "exposure time"},
           {{"1/4000 s", "1/4000"},
            {"1/8000 s", "1/8000"},
            {"1/2000 s", "1/2000"},
            {"1/1000 s", "1/1000"},
            {"30 s", "30 sec"}},
           0.8),
      Num("aperture",
          {"aperture", "max aperture", "aperture range", "f number"}, 1.2,
          5.6, 1, {"f"}, 0.75),
      Num("focal length",
          {"focal length", "focal range", "lens focal length",
           "focal distance"},
          10, 600, 0, {"mm", "millimeters"}, 0.8),
      Num("optical zoom",
          {"optical zoom", "optical zoom factor", "zoom",
           "lens magnification"},
          1, 83, 0, {"x", "times"}, 0.85),
      Num("digital zoom",
          {"digital zoom", "digital zoom factor", "dig zoom"}, 2, 16, 0,
          {"x", "times"}, 0.6),
      Num("screen size",
          {"screen size", "screen diagonal", "lcd screen size",
           "display size", "monitor size"},
          2.5, 3.5, 1, {"inch", "\"", "in"}, 0.85),
      Num("screen resolution",
          {"screen resolution", "lcd screen resolution", "screen dots",
           "display dots"},
          230, 2360, 0, {"k dots", "thousand dots", "dots"}, 0.6),
      Enum("viewfinder",
           {"viewfinder", "viewfinder type", "finder", "eyepiece"},
           {{"optical", "optical viewfinder"},
            {"electronic", "electronic viewfinder", "EVF"},
            {"none", "no viewfinder"},
            {"hybrid"}},
           0.65),
      Code("battery", {"battery", "battery model", "battery pack",
                       "power cell"},
           {"NP", "LP", "EN-EL", "DMW-BL", "BLN"}, 3, 0.7),
      Num("battery life",
          {"battery life", "battery life shots", "shots per charge",
           "cipa rating"},
          200, 1900, 0, {"shots", "images", "frames"}, 0.7),
      Num("weight",
          {"weight", "body weight", "weight with battery", "mass"}, 200,
          1500, 0, {"g", "grams", "gr"}, 0.9),
      Dims("dimensions",
           {"dimensions", "body dimensions", "dimensions w x h x d",
            "measurements"},
           50, 160, 0.75),
      Enum("brand", {"brand", "brand name", "manufacturer", "maker"},
           {{"Canon"},
            {"Nikon"},
            {"Sony"},
            {"Panasonic"},
            {"Fujifilm"},
            {"Olympus"},
            {"Pentax"}},
           0.95, 0.98),
      Code("model", {"model", "model name", "model number", "product code"},
           {"EOS", "D", "A", "DMC", "X-T", "E-M"}, 4, 0.95),
      Price("price", {"price", "price usd", "retail price", "cost"}, 99,
            6499),
      Enum("video resolution",
           {"video resolution", "max video resolution", "video mode",
            "movie format"},
           {{"4K UHD", "4K", "2160p"},
            {"Full HD", "1080p", "FHD"},
            {"HD", "720p"},
            {"8K", "4320p"}},
           0.8),
      Num("frame rate",
          {"frame rate", "video frame rate", "fps", "frames per second"},
          24, 240, 0, {"fps", "frames/s"}, 0.65),
      Enum("storage type",
           {"storage type", "storage media", "memory card type",
            "card slot"},
           {{"SD", "SD card", "SDHC/SDXC"},
            {"CompactFlash", "CF"},
            {"XQD"},
            {"Memory Stick", "MS Duo"}},
           0.75),
      Enum("connectivity",
           {"connectivity", "connectivity ports", "interfaces", "ports"},
           {{"USB 3.0", "usb3"},
            {"USB 2.0", "usb2"},
            {"USB-C", "usb type-c"},
            {"micro HDMI", "hdmi"}},
           0.6),
      Flag("wifi", {"wifi", "wifi support", "wi-fi", "wireless lan"},
           {"802.11ac", "802.11n", "dual band"}, 0.75),
      Flag("gps", {"gps", "gps receiver", "built-in gps", "geotagging"},
           {"built-in", "via smartphone", "glonass"}, 0.55),
      Flag("flash", {"flash", "built-in flash", "flash type", "strobe"},
           {"pop-up", "hot shoe", "guide number 12"}, 0.7),
      Enum("image stabilization",
           {"image stabilization", "stabilization", "image stabilizer",
            "anti shake"},
           {{"optical", "optical stabilization", "lens shift"},
            {"sensor shift", "5-axis", "ibis"},
            {"digital", "electronic"},
            {"none", "no stabilization"}},
           0.7),
      Enum("file format",
           {"file format", "image file format", "file types",
            "recording format"},
           {{"JPEG", "jpg"},
            {"RAW", "raw + jpeg"},
            {"RAW, JPEG", "raw/jpeg"},
            {"HEIF"}},
           0.6),
      Num("burst mode",
          {"burst mode", "burst rate", "continuous shooting",
           "drive speed"},
          3, 30, 0, {"fps", "frames per second", "shots/s"}, 0.65),
      Num("autofocus points",
          {"autofocus points", "af points", "autofocus areas",
           "focus points"},
          9, 693, 0, {"points", "pt"}, 0.6),
      Enum("lens mount",
           {"lens mount", "mount", "lens mount type", "bayonet"},
           {{"EF", "canon ef"},
            {"F", "nikon f"},
            {"E", "sony e"},
            {"micro four thirds", "mft", "m43"},
            {"fixed lens", "built-in lens"}},
           0.6),
      Enum("color", {"color", "body color", "colour", "finish"},
           {{"black"}, {"silver"}, {"white"}, {"red"}, {"graphite", "grey"}},
           0.7),
      Num("warranty",
          {"warranty", "warranty period", "warranty years", "guarantee"}, 1,
          3, 0, {"years", "yr", "year"}, 0.55),
      Num("release year",
          {"release year", "year of release", "year", "announced"}, 2009,
          2020, 0, {}, 0.6),
      Text("highlights",
           {"highlights", "key highlights", "key features", "about"},
           {"fast", "autofocus", "weather", "sealed", "compact",
            "lightweight", "professional", "travel", "vlogging",
            "touchscreen", "tilting", "bluetooth", "timelapse", "panorama"},
           0.5),
  };
  return d;
}

DomainSpec BuildHeadphoneDomain() {
  DomainSpec d;
  d.name = "headphones";
  d.decoration_prefixes = CommonDecorationPrefixes();
  d.decoration_suffixes = CommonDecorationSuffixes();
  d.properties = {
      Enum("brand", {"brand", "brand name", "manufacturer", "maker"},
           {{"Sony"},
            {"Bose"},
            {"Sennheiser"},
            {"Audio-Technica"},
            {"JBL"},
            {"Beats"},
            {"AKG"}},
           0.95, 0.98),
      Code("model", {"model", "model name", "model number", "product code"},
           {"WH", "QC", "HD", "ATH-M", "K"}, 3, 0.95),
      Enum("type", {"type", "headphone type", "form factor",
                    "wearing style"},
           {{"over-ear", "circumaural", "around ear"},
            {"on-ear", "supra-aural"},
            {"in-ear", "earbuds", "canal"},
            {"true wireless"}},
           0.85),
      Num("driver size",
          {"driver size", "driver diameter", "driver", "transducer size"},
          6, 53, 0, {"mm", "millimeters"}, 0.8),
      Num("impedance",
          {"impedance", "nominal impedance", "impedance ohms",
           "resistance"},
          16, 600, 0, {"ohm", "ohms", "Ω"}, 0.8),
      Num("sensitivity",
          {"sensitivity", "sensitivity db", "spl", "loudness"}, 85, 120, 0,
          {"dB", "db/mw", "decibels"}, 0.75),
      Enum("frequency response",
           {"frequency response", "frequency range", "freq response",
            "audio bandwidth"},
           {{"20 Hz - 20 kHz", "20-20000 hz"},
            {"10 Hz - 40 kHz", "10-40000 hz"},
            {"5 Hz - 40 kHz", "5-40000 hz"},
            {"15 Hz - 25 kHz", "15-25000 hz"}},
           0.75),
      Num("cable length",
          {"cable length", "cable", "cord length", "wire length"}, 0.8, 3.0,
          1, {"m", "meters", "metres"}, 0.6),
      Flag("wireless",
           {"wireless", "wireless connection", "bluetooth", "cordless"},
           {"bluetooth 5.0", "2.4 ghz", "rf"}, 0.85),
      Enum("bluetooth version",
           {"bluetooth version", "bt version", "bluetooth release",
            "wireless standard"},
           {{"5.0"}, {"4.2"}, {"5.2"}, {"4.1"}},
           0.6),
      Num("battery life",
          {"battery life", "battery life hours", "playtime",
           "playback time"},
          4, 80, 0, {"hours", "h", "hrs"}, 0.7),
      Flag("noise cancelling",
           {"noise cancelling", "active noise cancelling", "anc",
            "noise reduction"},
           {"hybrid anc", "feedforward", "adaptive"}, 0.7),
      Flag("microphone",
           {"microphone", "built-in microphone", "mic", "voice input"},
           {"boom", "inline", "dual mic"}, 0.7),
      Num("weight", {"weight", "net weight", "weight grams", "mass"}, 4,
          400, 0, {"g", "grams", "gr"}, 0.85),
      Enum("color", {"color", "colour", "color finish", "finish"},
           {{"black"}, {"white"}, {"blue"}, {"silver"}, {"rose gold"}},
           0.75),
      Price("price", {"price", "retail price", "price usd", "cost"}, 19,
            899),
      Num("warranty", {"warranty", "warranty period", "guarantee"}, 1, 3, 0,
          {"years", "yr", "year"}, 0.5),
      Flag("foldable",
           {"foldable", "foldable design", "folding", "collapsible"},
           {"flat folding", "swivel"}, 0.5),
  };
  return d;
}

DomainSpec BuildPhoneDomain() {
  DomainSpec d;
  d.name = "phones";
  d.decoration_prefixes = CommonDecorationPrefixes();
  d.decoration_suffixes = CommonDecorationSuffixes();
  d.properties = {
      Enum("brand", {"brand", "brand name", "manufacturer", "maker"},
           {{"Samsung"}, {"Apple"}, {"Huawei"}, {"Xiaomi"}, {"OnePlus"},
            {"Motorola"}, {"Nokia"}},
           0.95, 0.98),
      Code("model", {"model", "model name", "model number", "device name"},
           {"Galaxy S", "iPhone", "P", "Mi", "Moto G"}, 2, 0.95),
      Num("display size",
          {"display size", "display diagonal", "screen size",
           "screen diagonal"},
          4.0, 7.2, 1, {"inch", "\"", "in"}, 0.9),
      Enum("display resolution",
           {"display resolution", "screen resolution", "resolution",
            "display pixels"},
           {{"1080 x 2400", "fhd+"},
            {"1440 x 3200", "qhd+"},
            {"720 x 1600", "hd+"},
            {"1170 x 2532"}},
           0.8),
      Enum("cpu", {"cpu", "cpu model", "processor", "chipset"},
           {{"Snapdragon 888"},
            {"Snapdragon 765G"},
            {"A14 Bionic"},
            {"Kirin 9000"},
            {"Dimensity 1200"},
            {"Exynos 2100"}},
           0.8),
      Num("cores", {"cores", "cpu cores", "number of cores", "core count"},
          4, 8, 0, {"cores", "core"}, 0.6),
      Num("ram", {"ram", "ram size", "ram memory", "system memory"}, 2, 16,
          0, {"GB", "gigabytes", "gb ram"}, 0.85),
      Num("storage",
          {"storage", "internal storage", "storage capacity", "rom"}, 32,
          512, 0, {"GB", "gigabytes"}, 0.85),
      Num("rear camera",
          {"rear camera", "rear camera resolution", "main camera",
           "back camera"},
          8, 108, 0, {"MP", "megapixels"}, 0.85),
      Num("front camera",
          {"front camera", "front camera resolution", "selfie camera",
           "secondary camera"},
          5, 44, 0, {"MP", "megapixels"}, 0.75),
      Num("battery capacity",
          {"battery capacity", "battery", "battery mah",
           "accumulator capacity"},
          1800, 6000, 0, {"mAh", "milliamp hours"}, 0.9),
      Enum("os", {"os", "os version", "operating system", "platform"},
           {{"Android 11", "android"},
            {"Android 12"},
            {"iOS 14", "ios"},
            {"iOS 15"}},
           0.8),
      Num("weight", {"weight", "net weight", "weight grams", "mass"}, 135,
          240, 0, {"g", "grams", "gr"}, 0.8),
      Dims("dimensions",
           {"dimensions", "body dimensions", "device size", "measurements"},
           7, 170, 0.7),
      Enum("sim type", {"sim type", "sim card type", "sim", "sim format"},
           {{"nano SIM", "nano-sim"},
            {"dual SIM", "dual sim"},
            {"eSIM", "esim"},
            {"micro SIM"}},
           0.65),
      Enum("network", {"network", "network type", "cellular",
                       "mobile bands"},
           {{"5G", "5g ready"}, {"4G LTE", "lte"}, {"3G"}}, 0.7),
      Flag("nfc", {"nfc", "nfc support", "near field communication",
                   "contactless"},
           {"google pay", "type a/b"}, 0.6),
      Enum("color", {"color", "colour", "color options", "finish"},
           {{"black", "phantom black"},
            {"white"},
            {"blue"},
            {"green"},
            {"gold"}},
           0.75),
      Price("price", {"price", "retail price", "price usd", "cost"}, 99,
            1599),
      Num("warranty", {"warranty", "warranty period", "guarantee"}, 1, 3, 0,
          {"years", "yr", "year"}, 0.5),
      Num("release year",
          {"release year", "launch year", "year", "announced"}, 2015, 2021,
          0, {}, 0.6),
      Num("refresh rate",
          {"refresh rate", "display refresh rate", "screen refresh",
           "hz rating"},
          60, 144, 0, {"Hz", "hertz"}, 0.55),
  };
  return d;
}

DomainSpec BuildTvDomain() {
  DomainSpec d;
  d.name = "tvs";
  d.decoration_prefixes = CommonDecorationPrefixes();
  d.decoration_suffixes = CommonDecorationSuffixes();
  d.properties = {
      Enum("brand", {"brand", "brand name", "manufacturer", "maker"},
           {{"Samsung"}, {"LG"}, {"Sony"}, {"TCL"}, {"Hisense"}, {"Philips"}},
           0.95, 0.98),
      Code("model", {"model", "model name", "model number", "product code"},
           {"QN", "OLED", "XR", "U", "PUS"}, 4, 0.95),
      Num("screen size",
          {"screen size", "screen diagonal", "display size",
           "diagonal inches"},
          24, 85, 0, {"inch", "\"", "in"}, 0.95),
      Enum("resolution",
           {"resolution", "display resolution", "native resolution",
            "pixel resolution"},
           {{"4K UHD", "3840 x 2160", "4k"},
            {"Full HD", "1920 x 1080", "1080p"},
            {"8K", "7680 x 4320"},
            {"HD Ready", "1366 x 768"}},
           0.9),
      Enum("panel type",
           {"panel type", "panel", "display technology", "screen type"},
           {{"OLED"}, {"QLED"}, {"LED", "led lcd"}, {"Mini LED"}}, 0.8),
      Num("refresh rate",
          {"refresh rate", "refresh rate hz", "screen refresh",
           "motion rate"},
          50, 144, 0, {"Hz", "hertz"}, 0.75),
      Enum("smart platform",
           {"smart platform", "smart tv platform", "smart tv os",
            "operating system"},
           {{"Tizen"}, {"webOS"}, {"Android TV", "google tv"}, {"Roku TV"}},
           0.75),
      Num("hdmi ports", {"hdmi ports", "hdmi", "hdmi inputs",
                         "hdmi connections"},
          1, 4, 0, {"ports", "x hdmi"}, 0.7),
      Num("usb ports", {"usb ports", "usb", "usb inputs"}, 1, 3, 0,
          {"ports", "x usb"}, 0.6),
      Num("speakers power",
          {"speakers power", "speaker power", "audio output",
           "sound output"},
          10, 80, 0, {"W", "watts"}, 0.7),
      Enum("hdr", {"hdr", "hdr support", "hdr format",
                   "high dynamic range"},
           {{"HDR10+", "hdr10 plus"},
            {"Dolby Vision"},
            {"HDR10"},
            {"HLG"},
            {"none", "no hdr"}},
           0.7),
      Num("weight",
          {"weight", "weight without stand", "net weight", "mass"}, 3, 45,
          1, {"kg", "kilograms"}, 0.75),
      Dims("dimensions",
           {"dimensions", "dimensions without stand", "set size",
            "measurements"},
           30, 1900, 0.7),
      Enum("energy class",
           {"energy class", "energy rating", "energy efficiency class",
            "power label"},
           {{"A"}, {"B"}, {"C"}, {"D"}, {"E"}, {"F"}, {"G"}}, 0.65),
      Enum("color", {"color", "colour", "bezel color", "finish"},
           {{"black"}, {"silver"}, {"titan gray", "grey"}, {"white"}}, 0.6),
      Price("price", {"price", "retail price", "price usd", "cost"}, 149,
            4999),
      Num("warranty", {"warranty", "warranty period", "guarantee"}, 1, 5, 0,
          {"years", "yr", "year"}, 0.5),
      Num("release year",
          {"release year", "model year", "year", "announced"}, 2016, 2021,
          0, {}, 0.6),
      Flag("wifi", {"wifi", "wifi support", "wi-fi", "wireless lan"},
           {"802.11ac", "wifi direct", "dual band"}, 0.7),
      Enum("tuner", {"tuner", "tv tuner", "tuner type",
                     "broadcast reception"},
           {{"DVB-T2", "dvb-t2/c/s2"},
            {"ATSC"},
            {"DVB-C"},
            {"analog", "analog tuner"}},
           0.55),
  };
  return d;
}

// The two scale-out domains (groceries, autos) back the million-property
// synthetic catalogs of the workload engine. They are built like the four
// paper domains — reference ontology, synonym lists with a hard tail,
// per-source value styling — but model categories whose real-world
// catalogs have hundreds of sources (supermarket feeds, car listing
// sites), which is the regime the scaled generator replicates.

DomainSpec BuildGroceryDomain() {
  DomainSpec d;
  d.name = "groceries";
  d.decoration_prefixes = CommonDecorationPrefixes();
  d.decoration_suffixes = CommonDecorationSuffixes();
  d.properties = {
      Enum("brand", {"brand", "brand name", "manufacturer", "producer"},
           {{"Nestle"}, {"Kraft"}, {"Danone"}, {"Unilever"}, {"Kellogg's"},
            {"General Mills"}, {"Barilla"}},
           0.95, 0.98),
      Code("sku", {"sku", "sku code", "article number", "product code"},
           {"GR", "SKU", "ART", "EAN"}, 6, 0.9),
      Num("net weight",
          {"net weight", "net content", "weight", "package weight"}, 50,
          2500, 0, {"g", "grams", "gr"}, 0.9),
      Price("price", {"price", "retail price", "unit price", "cost"}, 0.5,
            49),
      Num("calories",
          {"calories", "energy", "calories per 100g", "energy value"}, 15,
          650, 0, {"kcal", "kcal/100g", "calories"}, 0.85),
      Num("fat", {"fat", "total fat", "fat content", "lipids"}, 0, 60, 1,
          {"g", "grams", "g/100g"}, 0.8),
      Num("carbohydrates",
          {"carbohydrates", "total carbohydrates", "carbs", "saccharides"},
          0, 90, 1, {"g", "grams", "g/100g"}, 0.8),
      Num("protein", {"protein", "protein content", "proteins"}, 0, 40, 1,
          {"g", "grams", "g/100g"}, 0.8),
      Num("sugar", {"sugar", "sugars", "of which sugars", "sugar content"},
          0, 70, 1, {"g", "grams", "g/100g"}, 0.7),
      Num("salt", {"salt", "salt content", "sodium", "salt equivalent"}, 0,
          8, 2, {"g", "grams", "mg"}, 0.7),
      Text("ingredients",
           {"ingredients", "ingredient list", "ingredients list",
            "composition"},
           {"wheat", "flour", "sugar", "palm", "oil", "cocoa", "milk",
            "salt", "yeast", "barley", "malt", "rice", "corn", "soy",
            "emulsifier", "lecithin", "vanilla", "hazelnut"},
           0.75),
      Enum("allergens",
           {"allergens", "allergen info", "allergy advice",
            "contains traces"},
           {{"gluten", "contains gluten"},
            {"milk", "contains milk"},
            {"nuts", "may contain nuts"},
            {"soy", "contains soy"},
            {"none", "allergen free"}},
           0.65),
      Flag("organic", {"organic", "organic certified", "bio",
                       "ecological"},
           {"eu organic", "usda organic", "certified"}, 0.55),
      Flag("gluten free",
           {"gluten free", "gluten-free", "free from gluten",
            "no gluten"},
           {"certified", "crossed grain"}, 0.5),
      Enum("packaging",
           {"packaging", "packaging type", "package format", "container"},
           {{"box", "carton"},
            {"bag", "pouch"},
            {"jar", "glass jar"},
            {"can", "tin"},
            {"bottle"}},
           0.7),
      Enum("country of origin",
           {"country of origin", "origin", "made in", "produced in"},
           {{"Italy"}, {"France"}, {"Germany"}, {"Spain"}, {"USA"},
            {"Netherlands"}},
           0.6),
      Num("shelf life",
          {"shelf life", "shelf life days", "best before",
           "storage duration"},
          30, 720, 0, {"days", "d", "months"}, 0.6),
      Num("serving size",
          {"serving size", "portion size", "serving", "portion"}, 15, 250,
          0, {"g", "grams", "ml"}, 0.6),
      Enum("storage",
           {"storage", "storage instructions", "keep", "conservation"},
           {{"ambient", "room temperature"},
            {"refrigerated", "keep refrigerated"},
            {"frozen", "keep frozen"},
            {"cool and dry", "store in a cool dry place"}},
           0.6),
      Num("units per pack",
          {"units per pack", "pack size", "pieces per pack", "count"}, 1,
          24, 0, {"pcs", "pieces", "units"}, 0.55),
  };
  return d;
}

DomainSpec BuildAutoDomain() {
  DomainSpec d;
  d.name = "autos";
  d.decoration_prefixes = CommonDecorationPrefixes();
  d.decoration_suffixes = CommonDecorationSuffixes();
  d.properties = {
      Enum("make", {"make", "car make", "brand", "manufacturer"},
           {{"Toyota"}, {"Volkswagen"}, {"Ford"}, {"BMW"}, {"Honda"},
            {"Hyundai"}, {"Renault"}},
           0.95, 0.98),
      Code("model", {"model", "model name", "model code", "trim code"},
           {"GT", "RS", "LX", "SE", "XD"}, 3, 0.95),
      Num("year", {"year", "model year", "registration year",
                   "first registration"},
          2005, 2021, 0, {}, 0.9),
      Price("price", {"price", "asking price", "list price", "cost"}, 4900,
            89000),
      Num("mileage", {"mileage", "odometer", "kilometers", "miles driven"},
          0, 250000, 0, {"km", "miles", "mi"}, 0.85),
      Enum("fuel type",
           {"fuel type", "fuel", "engine fuel", "power source"},
           {{"petrol", "gasoline"},
            {"diesel"},
            {"hybrid", "petrol hybrid"},
            {"electric", "ev", "battery electric"},
            {"lpg", "autogas"}},
           0.85),
      Enum("transmission",
           {"transmission", "transmission type", "gearbox", "shift"},
           {{"manual", "manual 6-speed"},
            {"automatic", "auto"},
            {"dual clutch", "dsg", "dct"},
            {"cvt", "continuously variable"}},
           0.8),
      Num("engine displacement",
          {"engine displacement", "displacement", "engine size",
           "cubic capacity"},
          900, 6200, 0, {"cc", "cm3", "l"}, 0.75),
      Num("horsepower",
          {"horsepower", "engine power", "power hp", "output"}, 60, 650, 0,
          {"hp", "bhp", "ps"}, 0.8),
      Num("torque", {"torque", "max torque", "torque nm", "twist"}, 90,
          900, 0, {"Nm", "newton meters", "lb-ft"}, 0.6),
      Num("doors", {"doors", "number of doors", "door count"}, 2, 5, 0,
          {"doors", "dr"}, 0.7),
      Num("seats", {"seats", "number of seats", "seating capacity"}, 2, 9,
          0, {"seats", "persons"}, 0.7),
      Enum("body type",
           {"body type", "body style", "vehicle type", "chassis"},
           {{"sedan", "saloon"},
            {"hatchback"},
            {"suv", "sport utility"},
            {"estate", "wagon", "touring"},
            {"coupe"},
            {"van", "minivan"}},
           0.8),
      Enum("drivetrain",
           {"drivetrain", "drive type", "driven wheels", "traction"},
           {{"front wheel drive", "fwd"},
            {"rear wheel drive", "rwd"},
            {"all wheel drive", "awd", "4x4"}},
           0.65),
      Enum("color", {"color", "exterior color", "colour", "paint"},
           {{"black"}, {"white"}, {"silver"}, {"blue"}, {"red"},
            {"grey", "gray"}},
           0.75),
      Num("fuel economy",
          {"fuel economy", "fuel consumption", "combined consumption",
           "mpg"},
          3, 15, 1, {"l/100km", "mpg", "km/l"}, 0.65),
      Num("co2 emissions",
          {"co2 emissions", "co2", "emissions", "carbon output"}, 0, 280,
          0, {"g/km", "grams per km"}, 0.55),
      Num("curb weight",
          {"curb weight", "weight", "kerb weight", "mass"}, 850, 2800, 0,
          {"kg", "kilograms"}, 0.65),
      Dims("dimensions",
           {"dimensions", "exterior dimensions", "size l x w x h",
            "measurements"},
           1400, 5400, 0.6),
      Num("trunk capacity",
          {"trunk capacity", "boot capacity", "cargo volume",
           "luggage space"},
          150, 800, 0, {"l", "liters", "litres"}, 0.55),
      Num("warranty", {"warranty", "warranty period", "guarantee"}, 2, 7,
          0, {"years", "yr", "year"}, 0.5),
      Num("airbags", {"airbags", "number of airbags", "airbag count"}, 1,
          10, 0, {"airbags", "bags"}, 0.5),
      Flag("sunroof", {"sunroof", "sun roof", "panoramic roof",
                       "moonroof"},
           {"panoramic", "tilt and slide"}, 0.45),
      Flag("navigation",
           {"navigation", "navigation system", "sat nav", "gps system"},
           {"built-in", "touchscreen", "connected"}, 0.5),
  };
  return d;
}

}  // namespace

const DomainSpec& CameraDomain() {
  static const DomainSpec* kDomain = new DomainSpec(BuildCameraDomain());
  return *kDomain;
}

const DomainSpec& HeadphoneDomain() {
  static const DomainSpec* kDomain = new DomainSpec(BuildHeadphoneDomain());
  return *kDomain;
}

const DomainSpec& PhoneDomain() {
  static const DomainSpec* kDomain = new DomainSpec(BuildPhoneDomain());
  return *kDomain;
}

const DomainSpec& TvDomain() {
  static const DomainSpec* kDomain = new DomainSpec(BuildTvDomain());
  return *kDomain;
}

const DomainSpec& GroceryDomain() {
  static const DomainSpec* kDomain = new DomainSpec(BuildGroceryDomain());
  return *kDomain;
}

const DomainSpec& AutoDomain() {
  static const DomainSpec* kDomain = new DomainSpec(BuildAutoDomain());
  return *kDomain;
}

std::vector<const DomainSpec*> AllDomains() {
  return {&CameraDomain(), &HeadphoneDomain(), &PhoneDomain(), &TvDomain(),
          &GroceryDomain(), &AutoDomain()};
}

std::vector<embedding::SemanticCluster> DomainClusters(
    const DomainSpec& domain) {
  std::vector<embedding::SemanticCluster> clusters;
  for (const ReferenceProperty& property : domain.properties) {
    embedding::SemanticCluster cluster;
    cluster.name = domain.name + "/" + property.reference;
    std::set<std::string> words;
    auto add_words = [&words](std::string_view phrase) {
      for (const std::string& word : text::EmbeddingWords(phrase)) {
        // Purely numeric tokens stay out of the vocabulary: pre-trained
        // GloVe knows frequent numbers, but their vectors carry little
        // property-level semantics.
        if (!text::TokenInClass(word, text::TokenClass::kNumericString)) {
          words.insert(word);
        }
      }
    };
    for (const std::string& name : property.surface_names) {
      add_words(name);
    }
    if (const auto* numeric = std::get_if<NumericValueSpec>(&property.value)) {
      for (const std::string& unit : numeric->units) {
        add_words(unit);
      }
    } else if (const auto* enumeration =
                   std::get_if<EnumValueSpec>(&property.value)) {
      for (const auto& renderings : enumeration->values) {
        for (const std::string& rendering : renderings) {
          add_words(rendering);
        }
      }
    } else if (const auto* dims =
                   std::get_if<DimensionsSpec>(&property.value)) {
      for (const std::string& unit : dims->units) {
        add_words(unit);
      }
    } else if (const auto* txt = std::get_if<TextValueSpec>(&property.value)) {
      for (const std::string& word : txt->word_pool) {
        add_words(word);
      }
    } else if (const auto* flag =
                   std::get_if<BooleanValueSpec>(&property.value)) {
      for (const std::string& detail : flag->true_details) {
        add_words(detail);
      }
    }
    cluster.words.assign(words.begin(), words.end());
    if (!cluster.words.empty()) {
      clusters.push_back(std::move(cluster));
    }
  }

  embedding::SemanticCluster decorations;
  decorations.name = domain.name + "/decorations";
  std::set<std::string> decoration_words;
  for (const std::string& word : domain.decoration_prefixes) {
    decoration_words.insert(text::EmbeddingWords(word).front());
  }
  for (const std::string& word : domain.decoration_suffixes) {
    decoration_words.insert(text::EmbeddingWords(word).front());
  }
  decorations.words.assign(decoration_words.begin(), decoration_words.end());
  clusters.push_back(std::move(decorations));

  // Boolean renderings share one cluster across all flag properties — the
  // generator's BooleanValueSpec values ("Yes", "TRUE", ...) are common
  // English words any pre-trained model knows, and they are deliberately
  // uninformative about *which* flag property they belong to.
  embedding::SemanticCluster booleans;
  booleans.name = domain.name + "/booleans";
  booleans.words = {"yes", "no", "true", "false", "y", "n"};
  clusters.push_back(std::move(booleans));
  return clusters;
}

}  // namespace leapme::data
