#ifndef LEAPME_DATA_DOMAIN_H_
#define LEAPME_DATA_DOMAIN_H_

#include <string>
#include <variant>
#include <vector>

#include "embedding/synthetic_model.h"

namespace leapme::data {

/// Numeric value with an optional unit, e.g. "24.3 MP" / "1/4000 s".
struct NumericValueSpec {
  double min = 0.0;
  double max = 1.0;
  int decimals = 0;  ///< 0 renders integers
  /// Synonymous unit renderings ("g", "grams", "gr"); empty = unit-less.
  std::vector<std::string> units;
  bool unit_before = false;  ///< "$ 499" instead of "499 $"
};

/// Closed set of logical values, each with synonymous renderings,
/// e.g. {{"CMOS", "cmos sensor"}, {"CCD"}}.
struct EnumValueSpec {
  std::vector<std::vector<std::string>> values;
};

/// Vendor-style model codes, e.g. "EOS-4821".
struct ModelCodeSpec {
  std::vector<std::string> prefixes;
  int digits = 4;
};

/// Physical dimensions "117 x 68 x 50 mm".
struct DimensionsSpec {
  double min = 40.0;
  double max = 400.0;
  std::vector<std::string> units = {"mm", "in"};
  int axes = 3;
};

/// Free-text values sampled from a word pool.
struct TextValueSpec {
  std::vector<std::string> word_pool;
  size_t min_words = 2;
  size_t max_words = 6;
};

/// Yes/no flags rendered in per-source styles ("Yes", "TRUE", "1", ...).
/// `true_details` are property-specific qualifiers some sources append to
/// positive values ("Yes (802.11ac)"), which is what keeps different flag
/// properties distinguishable from instance data alone.
struct BooleanValueSpec {
  std::vector<std::string> true_details;
};

/// Tagged union of the value generators.
using ValueSpec = std::variant<NumericValueSpec, EnumValueSpec, ModelCodeSpec,
                               DimensionsSpec, TextValueSpec,
                               BooleanValueSpec>;

/// One property of a domain's reference ontology: the ground-truth match
/// class. Sources render it under one of its synonymous surface names with
/// source-specific value formatting.
struct ReferenceProperty {
  /// Canonical reference name; the alignment target (ground truth).
  std::string reference;
  /// Synonymous surface names ordered by popularity ("resolution",
  /// "megapixels", "effective pixels", "mp"); sources pick Zipf-weighted.
  std::vector<std::string> surface_names;
  ValueSpec value;
  /// Probability that a source's schema carries this property.
  double source_prevalence = 0.85;
  /// Probability that an entity of a carrying source has a value for it.
  double fill_rate = 0.9;
};

/// A product domain: the reference ontology plus domain-wide noise pools.
struct DomainSpec {
  std::string name;
  std::vector<ReferenceProperty> properties;
  /// Words prepended/appended to surface names as per-source decoration
  /// ("product weight", "weight details").
  std::vector<std::string> decoration_prefixes;
  std::vector<std::string> decoration_suffixes;
};

/// The four evaluation domains (paper §V-B). Cameras is the large,
/// balanced, "high-quality" domain; the other three are smaller and
/// noisier ("low-quality").
const DomainSpec& CameraDomain();
const DomainSpec& HeadphoneDomain();
const DomainSpec& PhoneDomain();
const DomainSpec& TvDomain();

/// Scale-out domains used by the million-property workload catalogs
/// (hundreds-of-sources categories: supermarket feeds, car listings).
const DomainSpec& GroceryDomain();
const DomainSpec& AutoDomain();

/// Every domain, evaluation domains first, scale-out domains last.
std::vector<const DomainSpec*> AllDomains();

/// Builds the semantic clusters for the synthetic embedding space of
/// `domain`: one cluster per reference property containing the words of
/// its surface names, units and enum renderings, plus one cluster for the
/// decoration words. This encodes the GloVe property that domain synonyms
/// live close together in embedding space (see DESIGN.md §1).
std::vector<embedding::SemanticCluster> DomainClusters(
    const DomainSpec& domain);

}  // namespace leapme::data

#endif  // LEAPME_DATA_DOMAIN_H_
