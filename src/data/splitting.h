#ifndef LEAPME_DATA_SPLITTING_H_
#define LEAPME_DATA_SPLITTING_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status_or.h"
#include "data/dataset.h"

namespace leapme::data {

/// A split of a dataset's sources into training and test sources
/// (paper §V-B: "we take a fraction of the sources of a dataset, at
/// random, for training").
struct SourceSplit {
  std::vector<SourceId> train_sources;
  std::vector<SourceId> test_sources;
};

/// Randomly assigns ceil(train_fraction * source_count) sources to
/// training, at least 2 (pairs need two sources) and at most
/// source_count - 1 (the test side needs one source).
SourceSplit SplitSources(const Dataset& dataset, double train_fraction,
                         Rng& rng);

/// A property pair with its 0/1 match label.
struct LabeledPair {
  PropertyPair pair;
  int32_t label = 0;
};

/// Builds the labeled training pairs: every matching pair whose two
/// properties both belong to training sources, plus `negative_ratio`
/// randomly sampled non-matching pairs per positive (the paper uses 2).
/// Fails when the training sources yield no positive pair.
StatusOr<std::vector<LabeledPair>> BuildTrainingPairs(
    const Dataset& dataset, const std::vector<SourceId>& train_sources,
    double negative_ratio, Rng& rng);

/// Builds the test pairs: every cross-source pair with at least one
/// property outside the training sources, labeled by ground truth.
std::vector<LabeledPair> BuildTestPairs(
    const Dataset& dataset, const std::vector<SourceId>& train_sources);

}  // namespace leapme::data

#endif  // LEAPME_DATA_SPLITTING_H_
