#ifndef LEAPME_DATA_DATASET_H_
#define LEAPME_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status_or.h"

namespace leapme::data {

/// Identifier of a source within a Dataset.
using SourceId = uint32_t;

/// Identifier of a property (a named attribute of one source's schema)
/// within a Dataset.
using PropertyId = uint32_t;

/// One property instance value: the (e, v) part of the paper's
/// (p, e, v) tuple, stored under its property.
struct InstanceValue {
  std::string entity;  ///< entity identifier within the source
  std::string value;   ///< literal value
};

/// A property of one source's class schema, together with its alignment to
/// the reference ontology (the evaluation ground truth).
struct PropertyRecord {
  std::string name;        ///< surface name, e.g. "effective pixels"
  SourceId source = 0;     ///< owning source
  /// Reference-ontology property this is aligned to; empty when unaligned.
  /// Two properties match iff they share a non-empty reference and belong
  /// to different sources (paper §V-B).
  std::string reference;
};

/// An unordered pair of property ids (a < b canonically).
struct PropertyPair {
  PropertyId a = 0;
  PropertyId b = 0;

  friend bool operator==(const PropertyPair&, const PropertyPair&) = default;
};

/// Multi-source property-instance collection for one entity class
/// (e.g. "cameras"): the input of the property matching task.
///
/// Storage is property-centric — instances are grouped under their
/// property, which is also the first processing step of Algorithm 1.
class Dataset {
 public:
  explicit Dataset(std::string name = "") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Registers a source and returns its id.
  SourceId AddSource(std::string source_name);

  /// Registers a property of `source`. `reference` may be empty.
  PropertyId AddProperty(SourceId source, std::string name,
                         std::string reference);

  /// Appends one instance value to `property`.
  void AddInstance(PropertyId property, std::string entity,
                   std::string value);

  size_t source_count() const { return source_names_.size(); }
  size_t property_count() const { return properties_.size(); }

  /// Total number of instances across all properties.
  size_t instance_count() const;

  const std::string& source_name(SourceId id) const {
    return source_names_[id];
  }
  const std::vector<std::string>& source_names() const {
    return source_names_;
  }

  const PropertyRecord& property(PropertyId id) const {
    return properties_[id];
  }
  const std::vector<PropertyRecord>& properties() const { return properties_; }

  const std::vector<InstanceValue>& instances(PropertyId id) const {
    return instances_[id];
  }

  /// Ground truth: true when `a` and `b` come from different sources and
  /// are aligned to the same non-empty reference property.
  bool IsMatch(PropertyId a, PropertyId b) const;

  /// All property ids belonging to `source`.
  std::vector<PropertyId> PropertiesOfSource(SourceId source) const;

  /// Every cross-source property pair (a < b), the candidate space of the
  /// matching task.
  std::vector<PropertyPair> AllCrossSourcePairs() const;

  /// Number of matching cross-source pairs (ground-truth positives).
  size_t CountMatchingPairs() const;

  /// Validates internal consistency (source ids in range, no property
  /// without instances when `require_instances`).
  Status Validate(bool require_instances = false) const;

 private:
  std::string name_;
  std::vector<std::string> source_names_;
  std::vector<PropertyRecord> properties_;
  std::vector<std::vector<InstanceValue>> instances_;  // parallel to properties_
};

}  // namespace leapme::data

#endif  // LEAPME_DATA_DATASET_H_
