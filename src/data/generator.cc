#include "data/generator.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/string_util.h"

namespace leapme::data {

namespace {

// Picks an index in [0, n) with Zipf-like weights 1/(i+1)^2: synonym rank
// 0 is by far the most popular surface name across sources, matching the
// skew of real product catalogs where most sites agree on the common name
// and a minority uses alternative terms.
size_t ZipfIndex(Rng& rng, size_t n) {
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double rank = static_cast<double>(i + 1);
    total += 1.0 / (rank * rank);
  }
  double target = rng.NextDouble() * total;
  double cumulative = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double rank = static_cast<double>(i + 1);
    cumulative += 1.0 / (rank * rank);
    if (target <= cumulative) return i;
  }
  return n - 1;
}

// Per-source styling applied uniformly to that source's decorated names.
enum class NameStyle : int {
  kNone = 0,
  kUnderscores,
  kTitleCase,
  kAllCaps,
  kPrefixWord,
  kSuffixWord,
};

std::string ApplyStyle(const std::string& name, NameStyle style,
                       const DomainSpec& domain, Rng& rng) {
  switch (style) {
    case NameStyle::kNone:
      return name;
    case NameStyle::kUnderscores:
      return ReplaceAll(name, " ", "_");
    case NameStyle::kTitleCase: {
      std::string out = name;
      bool at_word_start = true;
      for (char& c : out) {
        if (c == ' ' || c == '_' || c == '-') {
          at_word_start = true;
        } else if (at_word_start) {
          c = static_cast<char>(
              std::toupper(static_cast<unsigned char>(c)));
          at_word_start = false;
        }
      }
      return out;
    }
    case NameStyle::kAllCaps:
      return AsciiToUpper(name);
    case NameStyle::kPrefixWord: {
      if (domain.decoration_prefixes.empty()) return name;
      size_t i = rng.NextBounded(domain.decoration_prefixes.size());
      return domain.decoration_prefixes[i] + " " + name;
    }
    case NameStyle::kSuffixWord: {
      if (domain.decoration_suffixes.empty()) return name;
      size_t i = rng.NextBounded(domain.decoration_suffixes.size());
      return name + " " + domain.decoration_suffixes[i];
    }
  }
  return name;
}

// The universe-level ("canonical") value of one (entity, property) slot:
// what the product actually is, before any source-specific rendering.
struct CanonicalValue {
  double number = 0.0;           // numeric
  double axes[3] = {0, 0, 0};    // dimensions
  size_t enum_index = 0;         // enumeration
  std::string code;              // model code
  std::vector<std::string> words;  // text
  bool flag = false;             // boolean
};

// Deterministically derives the canonical value of property `r` for
// universe entity `e`: the same entity reports the same resolution on
// every site that lists it.
CanonicalValue MakeCanonical(const ReferenceProperty& property, size_t e,
                             size_t r, uint64_t seed) {
  Rng rng(Mix64(seed ^ (e * 0x9e3779b97f4a7c15ULL) ^
                (r * 0xc2b2ae3d27d4eb4fULL)));
  CanonicalValue canonical;
  if (const auto* numeric = std::get_if<NumericValueSpec>(&property.value)) {
    canonical.number = rng.NextDouble(numeric->min, numeric->max);
    if (numeric->decimals == 0) {
      canonical.number = std::round(canonical.number);
    }
  } else if (const auto* enumeration =
                 std::get_if<EnumValueSpec>(&property.value)) {
    canonical.enum_index = rng.NextBounded(enumeration->values.size());
  } else if (const auto* code = std::get_if<ModelCodeSpec>(&property.value)) {
    const std::string& prefix =
        code->prefixes[rng.NextBounded(code->prefixes.size())];
    canonical.code = prefix + "-";
    for (int i = 0; i < code->digits; ++i) {
      canonical.code += static_cast<char>('0' + rng.NextBounded(10));
    }
  } else if (const auto* dims = std::get_if<DimensionsSpec>(&property.value)) {
    for (int axis = 0; axis < dims->axes && axis < 3; ++axis) {
      canonical.axes[axis] = std::round(rng.NextDouble(dims->min, dims->max));
    }
  } else if (const auto* txt = std::get_if<TextValueSpec>(&property.value)) {
    size_t count = txt->min_words +
                   rng.NextBounded(txt->max_words - txt->min_words + 1);
    for (size_t i = 0; i < count; ++i) {
      canonical.words.push_back(
          txt->word_pool[rng.NextBounded(txt->word_pool.size())]);
    }
  } else {
    canonical.flag = rng.NextBool();
  }
  return canonical;
}

// Per-source value formatting decisions for one carried property.
struct SourceProperty {
  size_t reference_index = 0;
  PropertyId property_id = 0;
  size_t unit_index = 0;
  bool space_before_unit = true;
  bool comma_decimal = false;
  size_t enum_rendering_seed = 0;
  size_t dimension_separator = 0;
  size_t boolean_style = 0;
};

const std::vector<std::string>& DimensionSeparators() {
  static const auto* kSeparators =
      new std::vector<std::string>{" x ", " X ", "x", " * "};
  return *kSeparators;
}

std::string FormatNumber(double value, int decimals, bool comma_decimal) {
  std::string text = StrFormat("%.*f", decimals, value);
  if (comma_decimal) {
    text = ReplaceAll(text, ".", ",");
  }
  return text;
}

// Renders the canonical value under the source's format, with optional
// per-instance noise.
std::string RenderValue(const ReferenceProperty& property,
                        const SourceProperty& sp,
                        const CanonicalValue& canonical, Rng& rng,
                        double noise_probability) {
  std::string rendered;
  if (const auto* numeric = std::get_if<NumericValueSpec>(&property.value)) {
    double value = canonical.number;
    if (rng.NextBool(noise_probability)) {
      // Sources disagree slightly on numeric specs now and then.
      value *= rng.NextDouble(0.95, 1.05);
      if (numeric->decimals == 0) value = std::round(value);
    }
    std::string number =
        FormatNumber(value, numeric->decimals, sp.comma_decimal);
    if (numeric->units.empty()) {
      rendered = number;
    } else {
      const std::string& unit = numeric->units[sp.unit_index];
      const char* space = sp.space_before_unit ? " " : "";
      rendered = numeric->unit_before ? unit + space + number
                                      : number + space + unit;
    }
    if (rng.NextBool(noise_probability)) {
      rendered = rng.NextBool() ? number : rendered + " (approx.)";
    }
  } else if (const auto* enumeration =
                 std::get_if<EnumValueSpec>(&property.value)) {
    const auto& logical = enumeration->values[canonical.enum_index];
    size_t rendering = sp.enum_rendering_seed % logical.size();
    if (rng.NextBool(noise_probability) && logical.size() > 1) {
      rendering = rng.NextBounded(logical.size());
    }
    rendered = logical[rendering];
  } else if (std::holds_alternative<ModelCodeSpec>(property.value)) {
    rendered = canonical.code;
  } else if (const auto* dims = std::get_if<DimensionsSpec>(&property.value)) {
    const std::string& separator =
        DimensionSeparators()[sp.dimension_separator];
    std::vector<std::string> axes;
    for (int axis = 0; axis < dims->axes && axis < 3; ++axis) {
      axes.push_back(FormatNumber(canonical.axes[axis], 0,
                                  /*comma_decimal=*/false));
    }
    rendered = JoinStrings(axes, separator) + " " +
               dims->units[sp.enum_rendering_seed % dims->units.size()];
  } else if (std::holds_alternative<TextValueSpec>(property.value)) {
    // Sources quote a (possibly partial) view of the same description.
    std::vector<std::string> words = canonical.words;
    if (rng.NextBool(noise_probability) && words.size() > 2) {
      words.resize(words.size() - 1);
    }
    rendered = JoinStrings(words, " ");
  } else {
    const auto* flag_spec = std::get_if<BooleanValueSpec>(&property.value);
    const auto& style = BooleanStyles()[sp.boolean_style];
    rendered = canonical.flag ? style.first : style.second;
    // Sources often qualify positive flags ("Yes (802.11ac)"), which is
    // what keeps different flag properties distinguishable from instance
    // data alone.
    if (canonical.flag && flag_spec != nullptr &&
        !flag_spec->true_details.empty() && rng.NextBool(0.6)) {
      rendered += " (" +
                  flag_spec->true_details[sp.enum_rendering_seed %
                                          flag_spec->true_details.size()] +
                  ")";
    }
  }
  return rendered;
}

}  // namespace

const std::vector<std::pair<std::string, std::string>>& BooleanStyles() {
  static const auto* kStyles =
      new std::vector<std::pair<std::string, std::string>>{
          {"Yes", "No"},
          {"yes", "no"},
          {"TRUE", "FALSE"},
          {"true", "false"},
          {"Y", "N"},
          {"1", "0"},
      };
  return *kStyles;
}

GeneratorOptions HighQualityOptions(size_t num_sources,
                                    size_t entities_per_source) {
  GeneratorOptions options;
  options.num_sources = num_sources;
  options.min_entities_per_source = entities_per_source;
  options.max_entities_per_source = entities_per_source;
  options.name_decoration_probability = 0.2;
  options.value_noise_probability = 0.04;
  options.unaligned_properties_per_source = 1.0;
  options.homonym_probability = 0.002;
  return options;
}

GeneratorOptions LowQualityOptions(size_t num_sources) {
  GeneratorOptions options;
  options.num_sources = num_sources;
  options.min_entities_per_source = 8;
  options.max_entities_per_source = 120;
  options.name_decoration_probability = 0.4;
  options.value_noise_probability = 0.12;
  options.unaligned_properties_per_source = 3.0;
  options.homonym_probability = 0.008;
  return options;
}

StatusOr<Dataset> GenerateCatalog(const DomainSpec& domain,
                                  const GeneratorOptions& options) {
  if (options.num_sources < 2) {
    return Status::InvalidArgument("need at least two sources");
  }
  if (options.min_entities_per_source == 0 ||
      options.min_entities_per_source > options.max_entities_per_source) {
    return Status::InvalidArgument("bad entities-per-source range");
  }
  if (domain.properties.empty()) {
    return Status::InvalidArgument("domain has no reference properties");
  }
  const size_t universe = options.universe_entities > 0
                              ? options.universe_entities
                              : 2 * options.max_entities_per_source;
  if (universe < options.max_entities_per_source) {
    return Status::InvalidArgument(
        "universe_entities smaller than entities per source");
  }

  Rng rng(options.seed);
  Dataset dataset(domain.name);

  for (size_t s = 0; s < options.num_sources; ++s) {
    SourceId source = dataset.AddSource(
        StrFormat("%s_source_%02zu", domain.name.c_str(), s));
    // Sources have a house naming style, but apply it inconsistently
    // (hand-maintained catalogs decorate only some rows). A uniformly
    // styled source would make *all* its property names share a prefix or
    // suffix word, which mass-produces high-string-similarity non-matches
    // that real catalogs do not exhibit.
    auto source_style = static_cast<NameStyle>(1 + rng.NextBounded(5));

    std::vector<SourceProperty> carried;
    std::set<std::string> used_names;

    for (size_t r = 0; r < domain.properties.size(); ++r) {
      const ReferenceProperty& reference = domain.properties[r];
      if (!rng.NextBool(reference.source_prevalence)) continue;

      // Surface-name choice: usually a synonym of the right property,
      // rarely a homonym borrowed from another property's synonym set.
      std::string base_name;
      if (rng.NextBool(options.homonym_probability) &&
          domain.properties.size() > 1) {
        size_t other = rng.NextBounded(domain.properties.size());
        if (other == r) other = (other + 1) % domain.properties.size();
        const auto& donor = domain.properties[other].surface_names;
        base_name = donor[ZipfIndex(rng, donor.size())];
      } else {
        base_name = reference.surface_names[ZipfIndex(
            rng, reference.surface_names.size())];
      }
      std::string name =
          rng.NextBool(options.name_decoration_probability)
              ? ApplyStyle(base_name, source_style, domain, rng)
              : base_name;
      // Schemas cannot contain duplicate property names; fall back to an
      // undecorated synonym, then to a numbered variant.
      if (used_names.count(name) > 0) {
        name = base_name;
      }
      size_t disambiguator = 2;
      while (used_names.count(name) > 0) {
        name = StrFormat("%s %zu", base_name.c_str(), disambiguator++);
      }
      used_names.insert(name);

      SourceProperty sp;
      sp.reference_index = r;
      sp.property_id = dataset.AddProperty(source, name, reference.reference);
      if (const auto* numeric =
              std::get_if<NumericValueSpec>(&reference.value)) {
        if (!numeric->units.empty()) {
          sp.unit_index = rng.NextBounded(numeric->units.size());
        }
        sp.space_before_unit = rng.NextBool(0.8);
        sp.comma_decimal = rng.NextBool(0.15);
      }
      sp.enum_rendering_seed = rng.NextBounded(8);
      sp.dimension_separator = rng.NextBounded(DimensionSeparators().size());
      sp.boolean_style = rng.NextBounded(BooleanStyles().size());
      carried.push_back(sp);
    }

    // Junk properties aligned to nothing: auto-extracted schemas contain
    // wrapper artifacts with meaningless names.
    auto junk_count = static_cast<size_t>(std::floor(
        options.unaligned_properties_per_source + rng.NextDouble()));
    std::vector<PropertyId> junk_ids;
    std::vector<size_t> junk_formats;
    for (size_t j = 0; j < junk_count; ++j) {
      std::string junk_name =
          StrFormat("col_%llu", static_cast<unsigned long long>(
                                    rng.NextBounded(900) + 100));
      if (used_names.count(junk_name) > 0) continue;
      used_names.insert(junk_name);
      junk_ids.push_back(dataset.AddProperty(source, junk_name, ""));
      // Format keyed by the column name: two sources only share a junk
      // format by coincidence, not by construction.
      junk_formats.push_back(
          HashBytes(junk_name.data(), junk_name.size()) % 4);
    }

    // Entities: a sample of the shared product universe.
    size_t entity_count =
        options.min_entities_per_source +
        rng.NextBounded(options.max_entities_per_source -
                        options.min_entities_per_source + 1);
    std::vector<size_t> universe_ids = rng.SampleIndices(universe,
                                                         entity_count);
    for (size_t universe_id : universe_ids) {
      std::string entity = StrFormat("prod_%05zu", universe_id);
      for (const SourceProperty& sp : carried) {
        const ReferenceProperty& reference =
            domain.properties[sp.reference_index];
        if (!rng.NextBool(reference.fill_rate)) continue;
        CanonicalValue canonical = MakeCanonical(
            reference, universe_id, sp.reference_index, options.seed);
        dataset.AddInstance(
            sp.property_id, entity,
            RenderValue(reference, sp, canonical, rng,
                        options.value_noise_probability));
      }
      for (size_t j = 0; j < junk_ids.size(); ++j) {
        if (!rng.NextBool(0.5)) continue;
        // Each junk column has its own format (wrapper artifacts are
        // internally consistent: one is a counter, another a hex id...).
        std::string value;
        switch (junk_formats[j]) {
          case 0:
            value = StrFormat("%llu", static_cast<unsigned long long>(
                                          rng.NextBounded(100000)));
            break;
          case 1:
            value = StrFormat("0x%04llx", static_cast<unsigned long long>(
                                              rng.NextBounded(65536)));
            break;
          case 2:
            value = StrFormat("%c%c-%llu",
                              static_cast<char>('A' + rng.NextBounded(26)),
                              static_cast<char>('A' + rng.NextBounded(26)),
                              static_cast<unsigned long long>(
                                  rng.NextBounded(1000)));
            break;
          default:
            value = StrFormat("node[%llu]", static_cast<unsigned long long>(
                                                rng.NextBounded(512)));
            break;
        }
        dataset.AddInstance(junk_ids[j], entity, value);
      }
    }
  }

  LEAPME_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

StatusOr<Dataset> GenerateScaledCatalog(const ScaledCatalogOptions& options) {
  if (options.num_sources < 2) {
    return Status::InvalidArgument("need at least two sources");
  }
  if (options.target_properties == 0) {
    return Status::InvalidArgument("target_properties must be positive");
  }
  if (options.target_properties > 100000000) {
    return Status::InvalidArgument("target_properties too large");
  }
  if (options.entities_per_source == 0) {
    return Status::InvalidArgument("entities_per_source must be positive");
  }
  if (options.sources_per_category < 2 ||
      options.sources_per_category > options.num_sources) {
    return Status::InvalidArgument(
        "sources_per_category must be in [2, num_sources]");
  }

  const std::vector<const DomainSpec*> domains = AllDomains();
  Rng rng(options.seed);
  Dataset dataset("scaled");
  for (size_t s = 0; s < options.num_sources; ++s) {
    dataset.AddSource(StrFormat("scaled_source_%04zu", s));
  }
  // Each category keeps a small private universe of products; two sources
  // listing the same category overlap heavily in it, which is where the
  // instance-feature matching signal comes from.
  const size_t universe = 2 * options.entities_per_source;

  for (size_t category = 0;
       dataset.property_count() < options.target_properties; ++category) {
    const DomainSpec& domain = *domains[category % domains.size()];
    const size_t replica = category / domains.size();
    const std::string tag = StrFormat("c%05zu", category);

    std::vector<size_t> carrier_sources =
        rng.SampleIndices(options.num_sources, options.sources_per_category);
    for (size_t source_index : carrier_sources) {
      const auto source = static_cast<SourceId>(source_index);
      auto source_style = static_cast<NameStyle>(1 + rng.NextBounded(5));
      std::vector<SourceProperty> carried;
      std::set<std::string> used_names;

      for (size_t r = 0; r < domain.properties.size(); ++r) {
        const ReferenceProperty& reference = domain.properties[r];
        if (!rng.NextBool(reference.source_prevalence)) continue;

        std::string base_name = reference.surface_names[ZipfIndex(
            rng, reference.surface_names.size())];
        std::string name =
            rng.NextBool(options.name_decoration_probability)
                ? ApplyStyle(base_name, source_style, domain, rng)
                : base_name;
        if (used_names.count(name) > 0) name = base_name;
        size_t disambiguator = 2;
        while (used_names.count(name) > 0) {
          name = StrFormat("%s %zu", base_name.c_str(), disambiguator++);
        }
        used_names.insert(name);

        SourceProperty sp;
        sp.reference_index = r;
        // The category tag makes the name unique within the source (each
        // source carries a category at most once) and gives name-token
        // blocking a shared token that scopes candidates to the category.
        sp.property_id = dataset.AddProperty(
            source, tag + " " + name,
            StrFormat("%s#%zu/%s", domain.name.c_str(), replica,
                      reference.reference.c_str()));
        if (const auto* numeric =
                std::get_if<NumericValueSpec>(&reference.value)) {
          if (!numeric->units.empty()) {
            sp.unit_index = rng.NextBounded(numeric->units.size());
          }
          sp.space_before_unit = rng.NextBool(0.8);
          sp.comma_decimal = rng.NextBool(0.15);
        }
        sp.enum_rendering_seed = rng.NextBounded(8);
        sp.dimension_separator =
            rng.NextBounded(DimensionSeparators().size());
        sp.boolean_style = rng.NextBounded(BooleanStyles().size());
        carried.push_back(sp);
      }

      std::vector<size_t> universe_ids =
          rng.SampleIndices(universe, options.entities_per_source);
      for (size_t universe_id : universe_ids) {
        std::string entity =
            StrFormat("%s_prod_%03zu", tag.c_str(), universe_id);
        for (const SourceProperty& sp : carried) {
          const ReferenceProperty& reference =
              domain.properties[sp.reference_index];
          if (!rng.NextBool(reference.fill_rate)) continue;
          // The property-class key folds the category in, so replica 3 of
          // "cameras" draws canonical values independent of replica 7's.
          CanonicalValue canonical =
              MakeCanonical(reference, universe_id,
                            category * 1009 + sp.reference_index,
                            options.seed);
          dataset.AddInstance(
              sp.property_id, entity,
              RenderValue(reference, sp, canonical, rng,
                          options.value_noise_probability));
        }
      }
    }
  }

  LEAPME_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace leapme::data
