#ifndef LEAPME_DATA_TSV_IO_H_
#define LEAPME_DATA_TSV_IO_H_

#include <string>

#include "common/status_or.h"
#include "data/dataset.h"

namespace leapme::data {

/// Reads a Dataset from a tab-separated file with the header
/// `source<TAB>entity<TAB>property<TAB>value<TAB>reference`, one instance
/// per line. The `reference` column may be empty (unaligned property).
/// This is the interchange format for plugging real data (e.g. DI2KG / WDC
/// exports) into the pipeline.
StatusOr<Dataset> ReadDatasetTsv(const std::string& path,
                                 std::string dataset_name = "");

/// Writes `dataset` in the format ReadDatasetTsv expects. Tabs and
/// newlines inside values are replaced by spaces.
Status WriteDatasetTsv(const Dataset& dataset, const std::string& path);

}  // namespace leapme::data

#endif  // LEAPME_DATA_TSV_IO_H_
