#include "data/dataset.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace leapme::data {

SourceId Dataset::AddSource(std::string source_name) {
  source_names_.push_back(std::move(source_name));
  return static_cast<SourceId>(source_names_.size() - 1);
}

PropertyId Dataset::AddProperty(SourceId source, std::string name,
                                std::string reference) {
  LEAPME_CHECK_LT(source, source_names_.size());
  properties_.push_back(
      PropertyRecord{std::move(name), source, std::move(reference)});
  instances_.emplace_back();
  return static_cast<PropertyId>(properties_.size() - 1);
}

void Dataset::AddInstance(PropertyId property, std::string entity,
                          std::string value) {
  LEAPME_CHECK_LT(property, instances_.size());
  instances_[property].push_back(
      InstanceValue{std::move(entity), std::move(value)});
}

size_t Dataset::instance_count() const {
  size_t total = 0;
  for (const auto& values : instances_) {
    total += values.size();
  }
  return total;
}

bool Dataset::IsMatch(PropertyId a, PropertyId b) const {
  const PropertyRecord& pa = properties_[a];
  const PropertyRecord& pb = properties_[b];
  return pa.source != pb.source && !pa.reference.empty() &&
         pa.reference == pb.reference;
}

std::vector<PropertyId> Dataset::PropertiesOfSource(SourceId source) const {
  std::vector<PropertyId> result;
  for (PropertyId id = 0; id < properties_.size(); ++id) {
    if (properties_[id].source == source) {
      result.push_back(id);
    }
  }
  return result;
}

std::vector<PropertyPair> Dataset::AllCrossSourcePairs() const {
  std::vector<PropertyPair> pairs;
  for (PropertyId a = 0; a < properties_.size(); ++a) {
    for (PropertyId b = a + 1; b < properties_.size(); ++b) {
      if (properties_[a].source != properties_[b].source) {
        pairs.push_back(PropertyPair{a, b});
      }
    }
  }
  return pairs;
}

size_t Dataset::CountMatchingPairs() const {
  size_t count = 0;
  for (PropertyId a = 0; a < properties_.size(); ++a) {
    for (PropertyId b = a + 1; b < properties_.size(); ++b) {
      if (IsMatch(a, b)) {
        ++count;
      }
    }
  }
  return count;
}

Status Dataset::Validate(bool require_instances) const {
  for (PropertyId id = 0; id < properties_.size(); ++id) {
    const PropertyRecord& record = properties_[id];
    if (record.source >= source_names_.size()) {
      return Status::Corruption(
          StrFormat("property %u references unknown source %u", id,
                    record.source));
    }
    if (record.name.empty()) {
      return Status::Corruption(StrFormat("property %u has empty name", id));
    }
    if (require_instances && instances_[id].empty()) {
      return Status::Corruption(
          StrFormat("property %u ('%s') has no instances", id,
                    record.name.c_str()));
    }
  }
  return Status::OK();
}

}  // namespace leapme::data
