#include "data/splitting.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace leapme::data {

namespace {

std::vector<bool> TrainMask(const Dataset& dataset,
                            const std::vector<SourceId>& train_sources) {
  std::vector<bool> mask(dataset.source_count(), false);
  for (SourceId source : train_sources) {
    mask[source] = true;
  }
  return mask;
}

}  // namespace

SourceSplit SplitSources(const Dataset& dataset, double train_fraction,
                         Rng& rng) {
  const size_t n = dataset.source_count();
  auto train_count = static_cast<size_t>(
      std::ceil(train_fraction * static_cast<double>(n)));
  train_count = std::clamp<size_t>(train_count, 2, n > 0 ? n - 1 : 0);

  std::vector<size_t> order = rng.SampleIndices(n, n);
  SourceSplit split;
  for (size_t i = 0; i < n; ++i) {
    auto id = static_cast<SourceId>(order[i]);
    if (i < train_count) {
      split.train_sources.push_back(id);
    } else {
      split.test_sources.push_back(id);
    }
  }
  std::sort(split.train_sources.begin(), split.train_sources.end());
  std::sort(split.test_sources.begin(), split.test_sources.end());
  return split;
}

StatusOr<std::vector<LabeledPair>> BuildTrainingPairs(
    const Dataset& dataset, const std::vector<SourceId>& train_sources,
    double negative_ratio, Rng& rng) {
  if (negative_ratio < 0.0) {
    return Status::InvalidArgument("negative_ratio must be >= 0");
  }
  std::vector<bool> is_train = TrainMask(dataset, train_sources);

  std::vector<PropertyId> train_properties;
  for (PropertyId id = 0; id < dataset.property_count(); ++id) {
    if (is_train[dataset.property(id).source]) {
      train_properties.push_back(id);
    }
  }

  std::vector<LabeledPair> pairs;
  std::vector<PropertyPair> negatives;
  for (size_t i = 0; i < train_properties.size(); ++i) {
    for (size_t j = i + 1; j < train_properties.size(); ++j) {
      PropertyId a = train_properties[i];
      PropertyId b = train_properties[j];
      if (dataset.property(a).source == dataset.property(b).source) continue;
      if (dataset.IsMatch(a, b)) {
        pairs.push_back(LabeledPair{PropertyPair{a, b}, 1});
      } else {
        negatives.push_back(PropertyPair{a, b});
      }
    }
  }
  size_t positive_count = pairs.size();
  if (positive_count == 0) {
    return Status::FailedPrecondition(
        StrFormat("no positive pairs among %zu training sources",
                  train_sources.size()));
  }

  auto wanted_negatives = static_cast<size_t>(
      std::llround(negative_ratio * static_cast<double>(positive_count)));
  rng.Shuffle(negatives);
  if (wanted_negatives < negatives.size()) {
    negatives.resize(wanted_negatives);
  }
  for (const PropertyPair& pair : negatives) {
    pairs.push_back(LabeledPair{pair, 0});
  }
  rng.Shuffle(pairs);
  return pairs;
}

std::vector<LabeledPair> BuildTestPairs(
    const Dataset& dataset, const std::vector<SourceId>& train_sources) {
  std::vector<bool> is_train = TrainMask(dataset, train_sources);
  std::vector<LabeledPair> pairs;
  for (PropertyId a = 0; a < dataset.property_count(); ++a) {
    for (PropertyId b = a + 1; b < dataset.property_count(); ++b) {
      const PropertyRecord& pa = dataset.property(a);
      const PropertyRecord& pb = dataset.property(b);
      if (pa.source == pb.source) continue;
      if (is_train[pa.source] && is_train[pb.source]) continue;
      pairs.push_back(
          LabeledPair{PropertyPair{a, b}, dataset.IsMatch(a, b) ? 1 : 0});
    }
  }
  return pairs;
}

}  // namespace leapme::data
