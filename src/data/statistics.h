#ifndef LEAPME_DATA_STATISTICS_H_
#define LEAPME_DATA_STATISTICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace leapme::data {

/// Per-source statistics of a dataset.
struct SourceStatistics {
  std::string name;
  size_t properties = 0;
  size_t aligned_properties = 0;  ///< properties with a reference
  size_t instances = 0;
  size_t entities = 0;  ///< distinct entity ids in this source
};

/// Aggregate statistics of a dataset — the numbers the paper reports per
/// dataset (§V-B: sources, properties, matching pairs) plus balance
/// indicators distinguishing "high-quality" from "low-quality" data.
struct DatasetStatistics {
  std::string name;
  size_t sources = 0;
  size_t properties = 0;
  size_t aligned_properties = 0;
  size_t instances = 0;
  size_t matching_pairs = 0;
  size_t cross_source_pairs = 0;
  size_t distinct_references = 0;
  /// min/max entities per source: equal for balanced datasets.
  size_t min_entities_per_source = 0;
  size_t max_entities_per_source = 0;
  /// Mean instances per property.
  double mean_instances_per_property = 0.0;
  std::vector<SourceStatistics> per_source;

  /// Multi-line human-readable report.
  std::string ToString() const;
};

/// Computes the statistics of `dataset`.
DatasetStatistics ComputeStatistics(const Dataset& dataset);

}  // namespace leapme::data

#endif  // LEAPME_DATA_STATISTICS_H_
