#ifndef LEAPME_DATA_GENERATOR_H_
#define LEAPME_DATA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "data/dataset.h"
#include "data/domain.h"

namespace leapme::data {

/// Knobs of the synthetic multi-source catalog generator (the DI2KG / WDC
/// substitute; see DESIGN.md §1).
struct GeneratorOptions {
  size_t num_sources = 10;
  /// Entities per source drawn uniformly from [min, max]; min == max gives
  /// the balanced "high-quality" setting of the camera dataset.
  size_t min_entities_per_source = 100;
  size_t max_entities_per_source = 100;
  /// Size of the shared product universe the sources sample from. Real
  /// multi-source product corpora (DI2KG, WDC) describe overlapping
  /// products, so matching properties share underlying values across
  /// sources — the signal instance-based matching relies on. 0 = twice
  /// the maximum entities per source.
  size_t universe_entities = 0;
  uint64_t seed = 42;
  /// Probability that a source decorates a property name (prefix/suffix
  /// word, underscores, case styling).
  double name_decoration_probability = 0.25;
  /// Probability that a rendered value is perturbed (unit dropped, approx
  /// marker added, digits typo).
  double value_noise_probability = 0.05;
  /// Expected number of junk properties per source that align to no
  /// reference property ("col_3", "field_7").
  double unaligned_properties_per_source = 1.5;
  /// Probability that a source picks a surface name belonging to a
  /// *different* reference property (homonym noise; hurts precision of
  /// name-only matchers). Keep small: the paper's unsupervised baselines
  /// reach precision ~0.95-0.99.
  double homonym_probability = 0.01;
};

/// Baseline option sets mirroring the paper's dataset characteristics
/// (§V-B): cameras = many balanced sources; headphones/phones/tvs =
/// fewer, imbalanced, noisier sources.
GeneratorOptions HighQualityOptions(size_t num_sources = 24,
                                    size_t entities_per_source = 100);
GeneratorOptions LowQualityOptions(size_t num_sources = 10);

/// Generates a multi-source Dataset for `domain`.
///
/// For each source: a subset of reference properties is selected by
/// prevalence; each selected property gets a per-source surface name
/// (Zipf-weighted synonym choice + optional decoration) and a per-source
/// value format; entities then fill properties by fill-rate. Ground truth
/// is recorded in PropertyRecord::reference.
StatusOr<Dataset> GenerateCatalog(const DomainSpec& domain,
                                  const GeneratorOptions& options);

/// Boolean renderings ("Yes"/"No", "TRUE"/"FALSE", ...) used by the
/// generator for BooleanValueSpec, exposed so the embedding vocabulary can
/// cover them.
const std::vector<std::pair<std::string, std::string>>& BooleanStyles();

}  // namespace leapme::data

#endif  // LEAPME_DATA_GENERATOR_H_
