#ifndef LEAPME_DATA_GENERATOR_H_
#define LEAPME_DATA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "data/dataset.h"
#include "data/domain.h"

namespace leapme::data {

/// Knobs of the synthetic multi-source catalog generator (the DI2KG / WDC
/// substitute; see DESIGN.md §1).
struct GeneratorOptions {
  size_t num_sources = 10;
  /// Entities per source drawn uniformly from [min, max]; min == max gives
  /// the balanced "high-quality" setting of the camera dataset.
  size_t min_entities_per_source = 100;
  size_t max_entities_per_source = 100;
  /// Size of the shared product universe the sources sample from. Real
  /// multi-source product corpora (DI2KG, WDC) describe overlapping
  /// products, so matching properties share underlying values across
  /// sources — the signal instance-based matching relies on. 0 = twice
  /// the maximum entities per source.
  size_t universe_entities = 0;
  uint64_t seed = 42;
  /// Probability that a source decorates a property name (prefix/suffix
  /// word, underscores, case styling).
  double name_decoration_probability = 0.25;
  /// Probability that a rendered value is perturbed (unit dropped, approx
  /// marker added, digits typo).
  double value_noise_probability = 0.05;
  /// Expected number of junk properties per source that align to no
  /// reference property ("col_3", "field_7").
  double unaligned_properties_per_source = 1.5;
  /// Probability that a source picks a surface name belonging to a
  /// *different* reference property (homonym noise; hurts precision of
  /// name-only matchers). Keep small: the paper's unsupervised baselines
  /// reach precision ~0.95-0.99.
  double homonym_probability = 0.01;
};

/// Baseline option sets mirroring the paper's dataset characteristics
/// (§V-B): cameras = many balanced sources; headphones/phones/tvs =
/// fewer, imbalanced, noisier sources.
GeneratorOptions HighQualityOptions(size_t num_sources = 24,
                                    size_t entities_per_source = 100);
GeneratorOptions LowQualityOptions(size_t num_sources = 10);

/// Generates a multi-source Dataset for `domain`.
///
/// For each source: a subset of reference properties is selected by
/// prevalence; each selected property gets a per-source surface name
/// (Zipf-weighted synonym choice + optional decoration) and a per-source
/// value format; entities then fill properties by fill-rate. Ground truth
/// is recorded in PropertyRecord::reference.
StatusOr<Dataset> GenerateCatalog(const DomainSpec& domain,
                                  const GeneratorOptions& options);

/// Knobs of the scaled catalog generator: the million-property regime the
/// workload engine soaks against. Instead of one domain's ontology per
/// source (a few dozen properties), every source carries many *category
/// instances* — independent replicas of the reference ontologies, the way
/// a big-retailer feed lists cameras next to groceries next to car
/// accessories. Property count grows as sources x categories x ontology
/// size, so hundreds of sources reach 10^6 properties while each category
/// keeps the per-domain matching structure intact.
struct ScaledCatalogOptions {
  /// Generation stops adding category instances once the catalog holds at
  /// least this many properties.
  size_t target_properties = 1000000;
  /// Number of sources the categories are spread over (hundreds).
  size_t num_sources = 400;
  /// Entities listed per (source, category); bounds instance volume.
  size_t entities_per_source = 12;
  /// Sources carrying each category instance. Matches only exist between
  /// sources listing the same category, so this is the knob for how many
  /// cross-source positives a category contributes.
  size_t sources_per_category = 6;
  uint64_t seed = 42;
  double name_decoration_probability = 0.25;
  double value_noise_probability = 0.05;
};

/// Generates one Dataset with ~target_properties properties spread over
/// num_sources sources.
///
/// Category instance c replicates domain AllDomains()[c % domains] with
/// an independent canonical-value universe (replica index keys the value
/// derivation), references namespaced "domain#replica/reference", and
/// every property name prefixed with the category tag ("c00042 ...") so
/// names stay unique per source and name-token blocking groups candidates
/// within a category. Ground truth stays exact: two properties match iff
/// they carry the same namespaced reference in different sources.
StatusOr<Dataset> GenerateScaledCatalog(const ScaledCatalogOptions& options);

/// Boolean renderings ("Yes"/"No", "TRUE"/"FALSE", ...) used by the
/// generator for BooleanValueSpec, exposed so the embedding vocabulary can
/// cover them.
const std::vector<std::pair<std::string, std::string>>& BooleanStyles();

}  // namespace leapme::data

#endif  // LEAPME_DATA_GENERATOR_H_
