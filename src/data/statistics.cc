#include "data/statistics.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace leapme::data {

DatasetStatistics ComputeStatistics(const Dataset& dataset) {
  DatasetStatistics stats;
  stats.name = dataset.name();
  stats.sources = dataset.source_count();
  stats.properties = dataset.property_count();
  stats.instances = dataset.instance_count();
  stats.matching_pairs = dataset.CountMatchingPairs();
  stats.cross_source_pairs = dataset.AllCrossSourcePairs().size();

  std::set<std::string> references;
  stats.per_source.resize(dataset.source_count());
  std::vector<std::set<std::string>> entities(dataset.source_count());
  for (SourceId s = 0; s < dataset.source_count(); ++s) {
    stats.per_source[s].name = dataset.source_name(s);
  }
  for (PropertyId id = 0; id < dataset.property_count(); ++id) {
    const PropertyRecord& record = dataset.property(id);
    SourceStatistics& source = stats.per_source[record.source];
    ++source.properties;
    if (!record.reference.empty()) {
      ++source.aligned_properties;
      ++stats.aligned_properties;
      references.insert(record.reference);
    }
    source.instances += dataset.instances(id).size();
    for (const InstanceValue& instance : dataset.instances(id)) {
      entities[record.source].insert(instance.entity);
    }
  }
  stats.distinct_references = references.size();

  stats.min_entities_per_source = stats.sources > 0 ? SIZE_MAX : 0;
  for (SourceId s = 0; s < dataset.source_count(); ++s) {
    stats.per_source[s].entities = entities[s].size();
    stats.min_entities_per_source =
        std::min(stats.min_entities_per_source, entities[s].size());
    stats.max_entities_per_source =
        std::max(stats.max_entities_per_source, entities[s].size());
  }
  if (stats.properties > 0) {
    stats.mean_instances_per_property =
        static_cast<double>(stats.instances) /
        static_cast<double>(stats.properties);
  }
  return stats;
}

std::string DatasetStatistics::ToString() const {
  std::string out = StrFormat(
      "dataset %s\n"
      "  sources:                %zu\n"
      "  properties:             %zu (%zu aligned to %zu references)\n"
      "  instances:              %zu (%.1f per property)\n"
      "  cross-source pairs:     %zu (%zu matching)\n"
      "  entities per source:    %zu - %zu%s\n",
      name.c_str(), sources, properties, aligned_properties,
      distinct_references, instances, mean_instances_per_property,
      cross_source_pairs, matching_pairs, min_entities_per_source,
      max_entities_per_source,
      min_entities_per_source == max_entities_per_source ? " (balanced)"
                                                         : " (imbalanced)");
  for (const SourceStatistics& source : per_source) {
    out += StrFormat("    %-28s %3zu properties, %5zu instances, "
                     "%4zu entities\n",
                     source.name.c_str(), source.properties,
                     source.instances, source.entities);
  }
  return out;
}

}  // namespace leapme::data
