#ifndef LEAPME_FEATURES_FEATURE_PIPELINE_H_
#define LEAPME_FEATURES_FEATURE_PIPELINE_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "embedding/embedding_model.h"
#include "features/feature_schema.h"
#include "features/instance_features.h"
#include "nn/matrix.h"

namespace leapme::features {

/// Options of the pair-feature computation.
struct PairFeatureOptions {
  /// Use |v1 - v2| for the property-vector difference instead of v1 - v2.
  /// The absolute difference keeps the pair feature order-independent,
  /// which matches the undirected pair semantics (ablated in
  /// feature_ablation_bench).
  bool absolute_difference = true;
  /// Divide edit-style distances (OSA, Levenshtein, Damerau-Levenshtein,
  /// LCS) by max(|name1|, |name2|) so all string-distance features share
  /// the [0, 1] scale of the q-gram profile / Jaro-Winkler distances.
  bool normalize_string_distances = true;
  /// Cap on the instances aggregated per property (0 = use all).
  size_t max_instances_per_property = 0;
};

/// Precomputed per-property state: the property feature vector (Table I
/// ids 5-6) plus the raw name for string distances.
struct PropertyFeatures {
  std::string name;
  /// Layout: [29 meta means][d value-embedding mean][d name embedding];
  /// size = 29 + 2d.
  embedding::Vector vector;
};

/// End-to-end feature computation of Algorithm 1 steps 1-4: instance
/// features -> per-property aggregation -> pair features.
class FeaturePipeline {
 public:
  /// `model` must outlive the pipeline.
  FeaturePipeline(const embedding::EmbeddingModel* model,
                  PairFeatureOptions options = {});

  const FeatureSchema& schema() const { return schema_; }
  const PairFeatureOptions& options() const { return options_; }
  size_t pair_dimension() const { return schema_.size(); }
  size_t property_dimension() const {
    return FeatureSchema::PropertyDimension(schema_.embedding_dim());
  }

  /// Computes the property features of a property with surface name `name`
  /// and the given instance values (Algorithm 1 lines 2-5).
  PropertyFeatures ComputeProperty(
      std::string_view name, std::span<const std::string> values) const;

  /// Computes the pair feature vector (Algorithm 1 line 8 / Table I ids
  /// 7-15) into `out` (size = pair_dimension()).
  void ComputePair(const PropertyFeatures& a, const PropertyFeatures& b,
                   std::span<float> out) const;

  /// Convenience: builds the design matrix for a list of pairs, gathering
  /// only `columns` (from FeatureSchema::SelectedColumns). Empty `columns`
  /// keeps all features. Rows are filled in parallel on the global thread
  /// pool (each row depends only on its own pair, so results are
  /// bit-identical at any thread count); `max_threads` caps the fan-out
  /// for this call (0 = pool width).
  nn::Matrix BuildDesignMatrix(
      const std::vector<const PropertyFeatures*>& lhs,
      const std::vector<const PropertyFeatures*>& rhs,
      const std::vector<size_t>& columns, size_t max_threads = 0) const;

 private:
  const embedding::EmbeddingModel* model_;
  PairFeatureOptions options_;
  FeatureSchema schema_;
  InstanceFeatureExtractor instance_extractor_;
};

}  // namespace leapme::features

#endif  // LEAPME_FEATURES_FEATURE_PIPELINE_H_
