#ifndef LEAPME_FEATURES_FEATURE_PIPELINE_H_
#define LEAPME_FEATURES_FEATURE_PIPELINE_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "embedding/embedding_model.h"
#include "features/feature_registry.h"
#include "features/feature_schema.h"
#include "nn/matrix.h"

namespace leapme::features {

/// Precomputed per-property state: the property feature vector (Table I
/// ids 5-6) plus the raw name for string distances.
struct PropertyFeatures {
  std::string name;
  /// Layout: [29 meta means][d value-embedding mean][d name embedding];
  /// size = 29 + 2d.
  embedding::Vector vector;
};

/// Cumulative per-stage instrumentation snapshot (see
/// FeaturePipeline::StageTimings).
struct StageTiming {
  std::string name;
  int version = 0;
  uint64_t property_calls = 0;  ///< property blocks computed
  uint64_t property_ns = 0;     ///< wall time spent in property blocks
  uint64_t pair_calls = 0;      ///< pair blocks computed
  uint64_t pair_ns = 0;         ///< wall time spent in pair blocks
};

/// End-to-end feature computation of Algorithm 1 steps 1-4: instance
/// features -> per-property aggregation -> pair features, composed from
/// the stages of a FeatureRegistry (the built-in registry by default).
class FeaturePipeline {
 public:
  /// `model` must outlive the pipeline. Uses FeatureRegistry::BuiltIn().
  FeaturePipeline(const embedding::EmbeddingModel* model,
                  PairFeatureOptions options = {});

  /// `model` and `registry` must outlive the pipeline.
  FeaturePipeline(const embedding::EmbeddingModel* model,
                  const FeatureRegistry* registry, PairFeatureOptions options);

  const FeatureSchema& schema() const { return schema_; }
  const PairFeatureOptions& options() const { return options_; }
  size_t pair_dimension() const { return schema_.size(); }
  size_t property_dimension() const { return schema_.property_dimension(); }

  /// Computes the property features of a property with surface name `name`
  /// and the given instance values (Algorithm 1 lines 2-5).
  PropertyFeatures ComputeProperty(
      std::string_view name, std::span<const std::string> values) const;

  /// Computes the pair feature vector (Algorithm 1 line 8 / Table I ids
  /// 7-15) into `out` (size = pair_dimension()).
  void ComputePair(const PropertyFeatures& a, const PropertyFeatures& b,
                   std::span<float> out) const;

  /// Convenience: builds the design matrix for a list of pairs, gathering
  /// only `columns` (from FeatureSchema::SelectedColumns or StageColumns).
  /// Empty `columns` keeps all features. Rows are filled in parallel on
  /// the global thread pool (each row depends only on its own pair, so
  /// results are bit-identical at any thread count); `max_threads` caps
  /// the fan-out for this call (0 = pool width).
  nn::Matrix BuildDesignMatrix(
      const std::vector<const PropertyFeatures*>& lhs,
      const std::vector<const PropertyFeatures*>& rhs,
      const std::vector<size_t>& columns, size_t max_threads = 0) const;

  /// Cumulative per-stage call counts and wall times since construction,
  /// in stage composition order. Thread-safe; counters keep advancing
  /// while feature computation runs on other threads.
  std::vector<StageTiming> StageTimings() const;

 private:
  /// One slot per stage; mutable because extraction is logically const.
  struct StageCounters {
    Counter property_calls;
    Counter property_ns;
    Counter pair_calls;
    Counter pair_ns;
  };

  StageContext Context() const { return StageContext{model_, &options_}; }

  const embedding::EmbeddingModel* model_;
  PairFeatureOptions options_;
  FeatureSchema schema_;
  mutable std::vector<StageCounters> counters_;
};

}  // namespace leapme::features

#endif  // LEAPME_FEATURES_FEATURE_PIPELINE_H_
