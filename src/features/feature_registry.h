#ifndef LEAPME_FEATURES_FEATURE_REGISTRY_H_
#define LEAPME_FEATURES_FEATURE_REGISTRY_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "embedding/embedding_model.h"
#include "features/feature_schema.h"

namespace leapme::features {

/// Everything a stage may read while computing: the embedding model and
/// the pair-feature options of the owning pipeline. Stages hold no state
/// of their own, so one stage instance can serve many pipelines.
struct StageContext {
  const embedding::EmbeddingModel* model = nullptr;
  const PairFeatureOptions* options = nullptr;
};

/// One named, versioned extractor stage of the feature pipeline.
///
/// A stage owns a contiguous block of the per-property feature vector
/// (`property_width` slots, possibly 0 for pair-only stages such as the
/// name string distances) and a contiguous block of the pair feature
/// vector (`pair_width` slots). The FeatureSchema assigns the concrete
/// offsets by composing the registry's stages in registration order.
///
/// `version()` is a content version: bump it whenever the stage's
/// computed values change (new formula, different normalization, ...),
/// so schema fingerprints of old persisted models stop matching and
/// loaders refuse to mis-score instead of silently drifting.
class FeatureStage {
 public:
  virtual ~FeatureStage() = default;

  virtual std::string_view name() const = 0;
  virtual int version() const = 0;

  /// Slots this stage writes per instance value (0 when the stage does
  /// not derive from instance values). Instance-derived stages average
  /// these per-instance blocks into their property block.
  virtual size_t instance_width(size_t /*embedding_dim*/) const { return 0; }
  /// Slots this stage owns in the per-property vector (0 = pair-only).
  virtual size_t property_width(size_t embedding_dim) const = 0;
  /// Slots this stage owns in the pair vector.
  virtual size_t pair_width(size_t embedding_dim) const = 0;

  /// Appends the FeatureSlot metadata of the stage's pair slots, in slot
  /// order (exactly pair_width entries).
  virtual void DescribePairSlots(size_t embedding_dim,
                                 std::vector<FeatureSlot>* slots) const = 0;

  /// Writes the per-instance block for one value (instance-derived stages
  /// only; `out` has instance_width slots).
  virtual void ExtractInstance(const StageContext& ctx,
                               std::string_view value,
                               std::span<float> out) const;

  /// Writes the stage's property block (`out` has property_width slots,
  /// pre-zeroed) for a property with surface name `name` and the given
  /// instance values.
  virtual void ComputeProperty(const StageContext& ctx,
                               std::string_view name,
                               std::span<const std::string> values,
                               std::span<float> out) const = 0;

  /// Writes the stage's pair block. `a_block`/`b_block` are the two
  /// properties' blocks of this stage (empty for pair-only stages);
  /// `a_name`/`b_name` are the surface names.
  virtual void ComputePair(const StageContext& ctx, std::string_view a_name,
                           std::string_view b_name,
                           std::span<const float> a_block,
                           std::span<const float> b_block,
                           std::span<float> out) const = 0;
};

/// An ordered, immutable set of feature stages. Composition order is
/// registration order; it fixes the slot layout of every schema derived
/// from the registry.
class FeatureRegistry {
 public:
  explicit FeatureRegistry(
      std::vector<std::unique_ptr<const FeatureStage>> stages);

  FeatureRegistry(const FeatureRegistry&) = delete;
  FeatureRegistry& operator=(const FeatureRegistry&) = delete;

  /// The built-in LEAPME stage set, reproducing Table I exactly:
  ///   char_class_meta, token_class_meta, numeric_value, value_embedding,
  ///   name_embedding, string_distances.
  /// Process-wide singleton; stages are stateless and thread-safe.
  static const FeatureRegistry& BuiltIn();

  const std::vector<const FeatureStage*>& stages() const { return views_; }
  size_t size() const { return views_.size(); }

  /// The stage named `name`, or nullptr when not registered.
  const FeatureStage* Find(std::string_view name) const;

  /// Comma-separated stage names, for error messages and --help text.
  std::string StageNames() const;

 private:
  std::vector<std::unique_ptr<const FeatureStage>> stages_;
  std::vector<const FeatureStage*> views_;
};

/// The names of the built-in stages, in composition order.
std::vector<std::string> BuiltInStageNames();

}  // namespace leapme::features

#endif  // LEAPME_FEATURES_FEATURE_REGISTRY_H_
