#include "features/instance_features.h"

#include "common/logging.h"
#include "features/feature_registry.h"

namespace leapme::features {

InstanceFeatureExtractor::InstanceFeatureExtractor(
    const embedding::EmbeddingModel* model)
    : model_(model) {
  LEAPME_CHECK(model != nullptr);
}

void InstanceFeatureExtractor::Extract(std::string_view value,
                                       std::span<float> out) const {
  LEAPME_CHECK_EQ(out.size(), dimension());
  // The instance vector is the concatenation of the instance blocks of
  // every instance-derived registry stage, in composition order.
  static const PairFeatureOptions kDefaultOptions;
  const StageContext ctx{model_, &kDefaultOptions};
  const size_t dim = model_->dimension();
  size_t offset = 0;
  for (const FeatureStage* stage : FeatureRegistry::BuiltIn().stages()) {
    const size_t width = stage->instance_width(dim);
    if (width == 0) continue;
    stage->ExtractInstance(ctx, value, out.subspan(offset, width));
    offset += width;
  }
  LEAPME_CHECK_EQ(offset, out.size());
}

}  // namespace leapme::features
