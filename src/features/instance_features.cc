#include "features/instance_features.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "text/char_class.h"
#include "text/tokenizer.h"

namespace leapme::features {

InstanceFeatureExtractor::InstanceFeatureExtractor(
    const embedding::EmbeddingModel* model)
    : model_(model) {
  LEAPME_CHECK(model != nullptr);
}

void InstanceFeatureExtractor::Extract(std::string_view value,
                                       std::span<float> out) const {
  LEAPME_CHECK_EQ(out.size(), dimension());
  std::fill(out.begin(), out.end(), 0.0f);

  size_t offset = 0;
  const text::CharClassCounts char_counts = text::CountCharClasses(value);
  for (size_t c = 0; c < text::kNumCharClasses; ++c) {
    auto cls = static_cast<text::CharClass>(c);
    out[offset++] = static_cast<float>(char_counts.fraction(cls));
    out[offset++] = static_cast<float>(char_counts.count(cls));
  }

  const text::TokenClassCounts token_counts = text::CountTokenClasses(value);
  for (size_t c = 0; c < text::kNumTokenClasses; ++c) {
    auto cls = static_cast<text::TokenClass>(c);
    out[offset++] = static_cast<float>(token_counts.fraction(cls));
    out[offset++] = static_cast<float>(token_counts.count(cls));
  }

  std::optional<double> numeric = ParseDouble(value);
  out[offset++] = numeric ? static_cast<float>(*numeric) : -1.0f;

  const std::vector<std::string> words = text::EmbeddingWords(value);
  embedding::Vector pooled = embedding::AverageEmbedding(*model_, words);
  std::copy(pooled.begin(), pooled.end(), out.begin() + offset);
}

}  // namespace leapme::features
