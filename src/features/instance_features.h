#ifndef LEAPME_FEATURES_INSTANCE_FEATURES_H_
#define LEAPME_FEATURES_INSTANCE_FEATURES_H_

#include <span>
#include <string_view>

#include "embedding/embedding_model.h"
#include "features/feature_schema.h"

namespace leapme::features {

/// Computes the per-instance feature vector of Table I ids 1-4 (the
/// TAPON-style meta-features plus the value-word embedding average):
///   [0, 18)   fraction & count of each of the 9 character classes
///   [18, 28)  fraction & count of each of the 5 token classes
///   [28]      numeric value of the instance (-1 when not a number)
///   [29, 29+d) average embedding of the instance's words
class InstanceFeatureExtractor {
 public:
  /// `model` must outlive the extractor.
  explicit InstanceFeatureExtractor(const embedding::EmbeddingModel* model);

  /// 29 + d (paper: 329 with d = 300).
  size_t dimension() const {
    return FeatureSchema::InstanceDimension(model_->dimension());
  }

  /// Writes the features of instance `value` into `out`
  /// (size = dimension()).
  void Extract(std::string_view value, std::span<float> out) const;

 private:
  const embedding::EmbeddingModel* model_;
};

}  // namespace leapme::features

#endif  // LEAPME_FEATURES_INSTANCE_FEATURES_H_
