#include "features/feature_pipeline.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "common/parallel.h"

namespace leapme::features {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

FeaturePipeline::FeaturePipeline(const embedding::EmbeddingModel* model,
                                 PairFeatureOptions options)
    : FeaturePipeline(model, &FeatureRegistry::BuiltIn(), options) {}

FeaturePipeline::FeaturePipeline(const embedding::EmbeddingModel* model,
                                 const FeatureRegistry* registry,
                                 PairFeatureOptions options)
    : model_(model),
      options_(options),
      schema_(registry, model->dimension(), options),
      counters_(registry->size()) {}

PropertyFeatures FeaturePipeline::ComputeProperty(
    std::string_view name, std::span<const std::string> values) const {
  PropertyFeatures features;
  features.name = std::string(name);
  features.vector.assign(property_dimension(), 0.0f);

  const StageContext ctx = Context();
  std::span<float> property(features.vector);
  const auto& spans = schema_.stages();
  for (size_t s = 0; s < spans.size(); ++s) {
    const StageSpan& span = spans[s];
    if (span.property_width() == 0) continue;
    const uint64_t start = NowNs();
    span.stage->ComputeProperty(
        ctx, name, values,
        property.subspan(span.property_begin, span.property_width()));
    counters_[s].property_calls.Increment();
    counters_[s].property_ns.Increment(NowNs() - start);
  }
  return features;
}

void FeaturePipeline::ComputePair(const PropertyFeatures& a,
                                  const PropertyFeatures& b,
                                  std::span<float> out) const {
  LEAPME_CHECK_EQ(out.size(), pair_dimension());
  LEAPME_CHECK_EQ(a.vector.size(), property_dimension());
  LEAPME_CHECK_EQ(b.vector.size(), property_dimension());

  const StageContext ctx = Context();
  std::span<const float> a_vec(a.vector);
  std::span<const float> b_vec(b.vector);
  const auto& spans = schema_.stages();
  for (size_t s = 0; s < spans.size(); ++s) {
    const StageSpan& span = spans[s];
    const uint64_t start = NowNs();
    span.stage->ComputePair(
        ctx, a.name, b.name,
        a_vec.subspan(span.property_begin, span.property_width()),
        b_vec.subspan(span.property_begin, span.property_width()),
        out.subspan(span.pair_begin, span.pair_width()));
    counters_[s].pair_calls.Increment();
    counters_[s].pair_ns.Increment(NowNs() - start);
  }
}

nn::Matrix FeaturePipeline::BuildDesignMatrix(
    const std::vector<const PropertyFeatures*>& lhs,
    const std::vector<const PropertyFeatures*>& rhs,
    const std::vector<size_t>& columns, size_t max_threads) const {
  LEAPME_CHECK_EQ(lhs.size(), rhs.size());
  const size_t full_dim = pair_dimension();
  const size_t out_dim = columns.empty() ? full_dim : columns.size();
  nn::Matrix design(lhs.size(), out_dim);
  const StageContext ctx = Context();
  const auto& spans = schema_.stages();
  // Each row is a pure function of its own pair; the chunks share nothing
  // but the scratch buffer, which is per-chunk. The stage loop is outer
  // within a chunk so each stage is timed once per chunk, not per row —
  // every slot is still computed by the same expression as a per-row
  // ComputePair, so the matrix is bit-identical.
  constexpr size_t kRowGrain = 32;
  ParallelFor(
      0, lhs.size(), kRowGrain, max_threads,
      [&](size_t row_begin, size_t row_end) {
        const size_t rows = row_end - row_begin;
        std::vector<float> full(rows * full_dim, 0.0f);
        for (size_t s = 0; s < spans.size(); ++s) {
          const StageSpan& span = spans[s];
          const uint64_t start = NowNs();
          for (size_t i = 0; i < rows; ++i) {
            const PropertyFeatures& a = *lhs[row_begin + i];
            const PropertyFeatures& b = *rhs[row_begin + i];
            std::span<float> row(full.data() + i * full_dim, full_dim);
            span.stage->ComputePair(
                ctx, a.name, b.name,
                std::span<const float>(a.vector)
                    .subspan(span.property_begin, span.property_width()),
                std::span<const float>(b.vector)
                    .subspan(span.property_begin, span.property_width()),
                row.subspan(span.pair_begin, span.pair_width()));
          }
          counters_[s].pair_calls.Increment(rows);
          counters_[s].pair_ns.Increment(NowNs() - start);
        }
        for (size_t i = 0; i < rows; ++i) {
          const float* full_row = full.data() + i * full_dim;
          auto row = design.row(row_begin + i);
          if (columns.empty()) {
            std::copy(full_row, full_row + full_dim, row.begin());
          } else {
            for (size_t c = 0; c < columns.size(); ++c) {
              row[c] = full_row[columns[c]];
            }
          }
        }
      });
  return design;
}

std::vector<StageTiming> FeaturePipeline::StageTimings() const {
  std::vector<StageTiming> timings;
  const auto& spans = schema_.stages();
  timings.reserve(spans.size());
  for (size_t s = 0; s < spans.size(); ++s) {
    StageTiming timing;
    timing.name = std::string(spans[s].stage->name());
    timing.version = spans[s].stage->version();
    timing.property_calls = counters_[s].property_calls.value();
    timing.property_ns = counters_[s].property_ns.value();
    timing.pair_calls = counters_[s].pair_calls.value();
    timing.pair_ns = counters_[s].pair_ns.value();
    timings.push_back(std::move(timing));
  }
  return timings;
}

}  // namespace leapme::features
