#include "features/feature_pipeline.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/parallel.h"
#include "text/string_metrics.h"
#include "text/tokenizer.h"

namespace leapme::features {

FeaturePipeline::FeaturePipeline(const embedding::EmbeddingModel* model,
                                 PairFeatureOptions options)
    : model_(model),
      options_(options),
      schema_(model->dimension()),
      instance_extractor_(model) {}

PropertyFeatures FeaturePipeline::ComputeProperty(
    std::string_view name, std::span<const std::string> values) const {
  const size_t instance_dim = instance_extractor_.dimension();  // 29 + d

  PropertyFeatures features;
  features.name = std::string(name);
  features.vector.assign(property_dimension(), 0.0f);

  // Table I id 5: the average of every instance feature.
  size_t used = values.size();
  if (options_.max_instances_per_property > 0) {
    used = std::min(used, options_.max_instances_per_property);
  }
  if (used > 0) {
    embedding::Vector instance(instance_dim, 0.0f);
    for (size_t i = 0; i < used; ++i) {
      instance_extractor_.Extract(values[i], instance);
      for (size_t j = 0; j < instance_dim; ++j) {
        features.vector[j] += instance[j];
      }
    }
    const auto inv = 1.0f / static_cast<float>(used);
    for (size_t j = 0; j < instance_dim; ++j) {
      features.vector[j] *= inv;
    }
  }

  // Table I id 6: the average embedding of the property-name words.
  embedding::Vector name_embedding =
      embedding::AverageEmbedding(*model_, text::EmbeddingWords(name));
  std::copy(name_embedding.begin(), name_embedding.end(),
            features.vector.begin() + instance_dim);
  return features;
}

void FeaturePipeline::ComputePair(const PropertyFeatures& a,
                                  const PropertyFeatures& b,
                                  std::span<float> out) const {
  LEAPME_CHECK_EQ(out.size(), pair_dimension());
  const size_t property_dim = property_dimension();
  LEAPME_CHECK_EQ(a.vector.size(), property_dim);
  LEAPME_CHECK_EQ(b.vector.size(), property_dim);

  // Table I id 7: difference between the two property feature vectors.
  if (options_.absolute_difference) {
    for (size_t i = 0; i < property_dim; ++i) {
      out[i] = std::fabs(a.vector[i] - b.vector[i]);
    }
  } else {
    for (size_t i = 0; i < property_dim; ++i) {
      out[i] = a.vector[i] - b.vector[i];
    }
  }

  // Table I ids 8-15: string distances between the property names.
  const std::string& n1 = a.name;
  const std::string& n2 = b.name;
  size_t offset = property_dim;
  if (options_.normalize_string_distances) {
    out[offset++] = static_cast<float>(text::NormalizedByMaxLength(
        text::OptimalStringAlignment(n1, n2), n1, n2));
    out[offset++] = static_cast<float>(
        text::NormalizedByMaxLength(text::Levenshtein(n1, n2), n1, n2));
    out[offset++] = static_cast<float>(text::NormalizedByMaxLength(
        text::DamerauLevenshtein(n1, n2), n1, n2));
    out[offset++] = static_cast<float>(text::NormalizedByMaxLength(
        text::LcsDistance(n1, n2), n1, n2));
    // The q-gram count distance is normalized by the total gram count.
    double total_grams = std::max<double>(
        1.0, static_cast<double>(n1.size() + n2.size()));
    out[offset++] =
        static_cast<float>(text::ThreeGramDistance(n1, n2) / total_grams);
  } else {
    out[offset++] =
        static_cast<float>(text::OptimalStringAlignment(n1, n2));
    out[offset++] = static_cast<float>(text::Levenshtein(n1, n2));
    out[offset++] = static_cast<float>(text::DamerauLevenshtein(n1, n2));
    out[offset++] = static_cast<float>(text::LcsDistance(n1, n2));
    out[offset++] = static_cast<float>(text::ThreeGramDistance(n1, n2));
  }
  out[offset++] = static_cast<float>(text::ThreeGramCosineDistance(n1, n2));
  out[offset++] = static_cast<float>(text::ThreeGramJaccardDistance(n1, n2));
  out[offset++] = static_cast<float>(text::JaroWinklerDistance(n1, n2));
  LEAPME_CHECK_EQ(offset, pair_dimension());
}

nn::Matrix FeaturePipeline::BuildDesignMatrix(
    const std::vector<const PropertyFeatures*>& lhs,
    const std::vector<const PropertyFeatures*>& rhs,
    const std::vector<size_t>& columns, size_t max_threads) const {
  LEAPME_CHECK_EQ(lhs.size(), rhs.size());
  const size_t full_dim = pair_dimension();
  const size_t out_dim = columns.empty() ? full_dim : columns.size();
  nn::Matrix design(lhs.size(), out_dim);
  // Each row is a pure function of its own pair; the chunks share nothing
  // but the scratch buffer, which is per-chunk.
  constexpr size_t kRowGrain = 32;
  ParallelFor(0, lhs.size(), kRowGrain, max_threads,
              [&](size_t row_begin, size_t row_end) {
                std::vector<float> full(full_dim, 0.0f);
                for (size_t i = row_begin; i < row_end; ++i) {
                  ComputePair(*lhs[i], *rhs[i], full);
                  auto row = design.row(i);
                  if (columns.empty()) {
                    std::copy(full.begin(), full.end(), row.begin());
                  } else {
                    for (size_t c = 0; c < columns.size(); ++c) {
                      row[c] = full[columns[c]];
                    }
                  }
                }
              });
  return design;
}

}  // namespace leapme::features
