#include "features/feature_registry.h"

#include <algorithm>
#include <cmath>

#include "common/kernels/kernels.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "text/char_class.h"
#include "text/string_metrics.h"
#include "text/tokenizer.h"

namespace leapme::features {

void FeatureStage::ExtractInstance(const StageContext& /*ctx*/,
                                   std::string_view /*value*/,
                                   std::span<float> out) const {
  // Only instance-derived stages (instance_width > 0) are ever asked for
  // per-instance blocks.
  LEAPME_CHECK_EQ(out.size(), 0u);
}

namespace {

constexpr const char* kCharClassNames[] = {
    "upper", "lower", "letter_other", "mark", "number",
    "punct", "symbol", "separator", "other"};

constexpr const char* kTokenClassNames[] = {
    "word", "lower_word", "capitalized", "upper_word", "numeric"};

/// Element-wise property-block difference (Table I id 7): |v1 - v2| by
/// default, v1 - v2 with absolute_difference off.
void DiffBlock(const StageContext& ctx, std::span<const float> a,
               std::span<const float> b, std::span<float> out) {
  LEAPME_CHECK_EQ(a.size(), out.size());
  LEAPME_CHECK_EQ(b.size(), out.size());
  const kernels::KernelTable& kernel = kernels::Active();
  if (ctx.options->absolute_difference) {
    kernel.abs_diff(a.data(), b.data(), out.data(), out.size());
  } else {
    kernel.sub(a.data(), b.data(), out.data(), out.size());
  }
}

/// Base for stages whose property block is the mean of a per-instance
/// block over the property's (optionally capped) instance values, and
/// whose pair block is the property-block difference. Covers Table I
/// ids 1-5 / 7.
class InstanceAveragedStage : public FeatureStage {
 public:
  size_t property_width(size_t embedding_dim) const final {
    return instance_width(embedding_dim);
  }
  size_t pair_width(size_t embedding_dim) const final {
    return instance_width(embedding_dim);
  }

  void ComputeProperty(const StageContext& ctx, std::string_view /*name*/,
                       std::span<const std::string> values,
                       std::span<float> out) const final {
    size_t used = values.size();
    if (ctx.options->max_instances_per_property > 0) {
      used = std::min(used, ctx.options->max_instances_per_property);
    }
    if (used == 0) return;  // `out` is pre-zeroed by the pipeline
    const kernels::KernelTable& kernel = kernels::Active();
    std::vector<float> instance(out.size(), 0.0f);
    for (size_t i = 0; i < used; ++i) {
      ExtractInstance(ctx, values[i], instance);
      kernel.add(instance.data(), out.data(), out.size());
    }
    kernel.scale(1.0f / static_cast<float>(used), out.data(), out.size());
  }

  void ComputePair(const StageContext& ctx, std::string_view /*a_name*/,
                   std::string_view /*b_name*/, std::span<const float> a_block,
                   std::span<const float> b_block,
                   std::span<float> out) const final {
    DiffBlock(ctx, a_block, b_block, out);
  }
};

/// Table I id 1: fraction & count of each of the 9 character classes.
class CharClassMetaStage final : public InstanceAveragedStage {
 public:
  std::string_view name() const override { return "char_class_meta"; }
  int version() const override { return 1; }
  size_t instance_width(size_t) const override {
    return FeatureSchema::kCharClassFeatures;
  }

  void DescribePairSlots(size_t, std::vector<FeatureSlot>* slots) const
      override {
    for (const char* cls : kCharClassNames) {
      slots->push_back({StrFormat("diff.char.%s.frac", cls),
                        FeatureOrigin::kInstance, false});
      slots->push_back({StrFormat("diff.char.%s.count", cls),
                        FeatureOrigin::kInstance, false});
    }
  }

  void ExtractInstance(const StageContext&, std::string_view value,
                       std::span<float> out) const override {
    const text::CharClassCounts counts = text::CountCharClasses(value);
    size_t offset = 0;
    for (size_t c = 0; c < text::kNumCharClasses; ++c) {
      auto cls = static_cast<text::CharClass>(c);
      out[offset++] = static_cast<float>(counts.fraction(cls));
      out[offset++] = static_cast<float>(counts.count(cls));
    }
  }
};

/// Table I id 2: fraction & count of each of the 5 token classes.
class TokenClassMetaStage final : public InstanceAveragedStage {
 public:
  std::string_view name() const override { return "token_class_meta"; }
  int version() const override { return 1; }
  size_t instance_width(size_t) const override {
    return FeatureSchema::kTokenClassFeatures;
  }

  void DescribePairSlots(size_t, std::vector<FeatureSlot>* slots) const
      override {
    for (const char* cls : kTokenClassNames) {
      slots->push_back({StrFormat("diff.token.%s.frac", cls),
                        FeatureOrigin::kInstance, false});
      slots->push_back({StrFormat("diff.token.%s.count", cls),
                        FeatureOrigin::kInstance, false});
    }
  }

  void ExtractInstance(const StageContext&, std::string_view value,
                       std::span<float> out) const override {
    const text::TokenClassCounts counts = text::CountTokenClasses(value);
    size_t offset = 0;
    for (size_t c = 0; c < text::kNumTokenClasses; ++c) {
      auto cls = static_cast<text::TokenClass>(c);
      out[offset++] = static_cast<float>(counts.fraction(cls));
      out[offset++] = static_cast<float>(counts.count(cls));
    }
  }
};

/// Table I id 3: numeric value of the instance (-1 when not a number).
class NumericValueStage final : public InstanceAveragedStage {
 public:
  std::string_view name() const override { return "numeric_value"; }
  int version() const override { return 1; }
  size_t instance_width(size_t) const override {
    return FeatureSchema::kNumericValueFeatures;
  }

  void DescribePairSlots(size_t, std::vector<FeatureSlot>* slots) const
      override {
    slots->push_back({"diff.numeric_value", FeatureOrigin::kInstance, false});
  }

  void ExtractInstance(const StageContext&, std::string_view value,
                       std::span<float> out) const override {
    std::optional<double> numeric = ParseDouble(value);
    out[0] = numeric ? static_cast<float>(*numeric) : -1.0f;
  }
};

/// Table I id 4: average embedding of the instance's words.
class ValueEmbeddingStage final : public InstanceAveragedStage {
 public:
  std::string_view name() const override { return "value_embedding"; }
  int version() const override { return 1; }
  size_t instance_width(size_t embedding_dim) const override {
    return embedding_dim;
  }

  void DescribePairSlots(size_t embedding_dim,
                         std::vector<FeatureSlot>* slots) const override {
    for (size_t i = 0; i < embedding_dim; ++i) {
      slots->push_back({StrFormat("diff.value_emb.%zu", i),
                        FeatureOrigin::kInstance, true});
    }
  }

  void ExtractInstance(const StageContext& ctx, std::string_view value,
                       std::span<float> out) const override {
    const std::vector<std::string> words = text::EmbeddingWords(value);
    embedding::Vector pooled = embedding::AverageEmbedding(*ctx.model, words);
    std::copy(pooled.begin(), pooled.end(), out.begin());
  }
};

/// Table I id 6: the average embedding of the property-name words
/// (name-derived, so no per-instance block).
class NameEmbeddingStage final : public FeatureStage {
 public:
  std::string_view name() const override { return "name_embedding"; }
  int version() const override { return 1; }
  size_t property_width(size_t embedding_dim) const override {
    return embedding_dim;
  }
  size_t pair_width(size_t embedding_dim) const override {
    return embedding_dim;
  }

  void DescribePairSlots(size_t embedding_dim,
                         std::vector<FeatureSlot>* slots) const override {
    for (size_t i = 0; i < embedding_dim; ++i) {
      slots->push_back(
          {StrFormat("diff.name_emb.%zu", i), FeatureOrigin::kName, true});
    }
  }

  void ComputeProperty(const StageContext& ctx, std::string_view name,
                       std::span<const std::string> /*values*/,
                       std::span<float> out) const override {
    embedding::Vector pooled =
        embedding::AverageEmbedding(*ctx.model, text::EmbeddingWords(name));
    std::copy(pooled.begin(), pooled.end(), out.begin());
  }

  void ComputePair(const StageContext& ctx, std::string_view, std::string_view,
                   std::span<const float> a_block,
                   std::span<const float> b_block,
                   std::span<float> out) const override {
    DiffBlock(ctx, a_block, b_block, out);
  }
};

/// Table I ids 8-15: the 8 string distances between the property names.
/// Pair-only — it owns no property slots.
class StringDistancesStage final : public FeatureStage {
 public:
  std::string_view name() const override { return "string_distances"; }
  int version() const override { return 1; }
  size_t property_width(size_t) const override { return 0; }
  size_t pair_width(size_t) const override {
    return FeatureSchema::kStringDistanceFeatures;
  }

  void DescribePairSlots(size_t, std::vector<FeatureSlot>* slots) const
      override {
    for (const char* metric :
         {"osa", "levenshtein", "damerau_levenshtein", "lcs", "qgram3",
          "cosine3", "jaccard3", "jaro_winkler"}) {
      slots->push_back(
          {StrFormat("dist.%s", metric), FeatureOrigin::kName, false});
    }
  }

  void ComputeProperty(const StageContext&, std::string_view,
                       std::span<const std::string>,
                       std::span<float> out) const override {
    LEAPME_CHECK_EQ(out.size(), 0u);
  }

  void ComputePair(const StageContext& ctx, std::string_view n1,
                   std::string_view n2, std::span<const float>,
                   std::span<const float>, std::span<float> out) const
      override {
    size_t offset = 0;
    if (ctx.options->normalize_string_distances) {
      out[offset++] = static_cast<float>(text::NormalizedByMaxLength(
          text::OptimalStringAlignment(n1, n2), n1, n2));
      out[offset++] = static_cast<float>(
          text::NormalizedByMaxLength(text::Levenshtein(n1, n2), n1, n2));
      out[offset++] = static_cast<float>(text::NormalizedByMaxLength(
          text::DamerauLevenshtein(n1, n2), n1, n2));
      out[offset++] = static_cast<float>(text::NormalizedByMaxLength(
          text::LcsDistance(n1, n2), n1, n2));
      // The q-gram count distance is normalized by the total gram count.
      double total_grams =
          std::max<double>(1.0, static_cast<double>(n1.size() + n2.size()));
      out[offset++] =
          static_cast<float>(text::ThreeGramDistance(n1, n2) / total_grams);
    } else {
      out[offset++] =
          static_cast<float>(text::OptimalStringAlignment(n1, n2));
      out[offset++] = static_cast<float>(text::Levenshtein(n1, n2));
      out[offset++] = static_cast<float>(text::DamerauLevenshtein(n1, n2));
      out[offset++] = static_cast<float>(text::LcsDistance(n1, n2));
      out[offset++] = static_cast<float>(text::ThreeGramDistance(n1, n2));
    }
    out[offset++] = static_cast<float>(text::ThreeGramCosineDistance(n1, n2));
    out[offset++] = static_cast<float>(text::ThreeGramJaccardDistance(n1, n2));
    out[offset++] = static_cast<float>(text::JaroWinklerDistance(n1, n2));
    LEAPME_CHECK_EQ(offset, out.size());
  }
};

}  // namespace

FeatureRegistry::FeatureRegistry(
    std::vector<std::unique_ptr<const FeatureStage>> stages)
    : stages_(std::move(stages)) {
  views_.reserve(stages_.size());
  for (const auto& stage : stages_) {
    LEAPME_CHECK(stage != nullptr);
    LEAPME_CHECK(Find(stage->name()) == nullptr)
        << "duplicate feature stage '" << stage->name() << "'";
    views_.push_back(stage.get());
  }
}

const FeatureRegistry& FeatureRegistry::BuiltIn() {
  static const FeatureRegistry* registry = [] {
    std::vector<std::unique_ptr<const FeatureStage>> stages;
    stages.push_back(std::make_unique<CharClassMetaStage>());
    stages.push_back(std::make_unique<TokenClassMetaStage>());
    stages.push_back(std::make_unique<NumericValueStage>());
    stages.push_back(std::make_unique<ValueEmbeddingStage>());
    stages.push_back(std::make_unique<NameEmbeddingStage>());
    stages.push_back(std::make_unique<StringDistancesStage>());
    return new FeatureRegistry(std::move(stages));
  }();
  return *registry;
}

const FeatureStage* FeatureRegistry::Find(std::string_view name) const {
  for (const FeatureStage* stage : views_) {
    if (stage->name() == name) return stage;
  }
  return nullptr;
}

std::string FeatureRegistry::StageNames() const {
  std::string names;
  for (const FeatureStage* stage : views_) {
    if (!names.empty()) names.append(", ");
    names.append(stage->name());
  }
  return names;
}

std::vector<std::string> BuiltInStageNames() {
  std::vector<std::string> names;
  for (const FeatureStage* stage : FeatureRegistry::BuiltIn().stages()) {
    names.emplace_back(stage->name());
  }
  return names;
}

}  // namespace leapme::features
