#ifndef LEAPME_FEATURES_FEATURE_SCHEMA_H_
#define LEAPME_FEATURES_FEATURE_SCHEMA_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status_or.h"

namespace leapme::features {

class FeatureRegistry;
class FeatureStage;

/// Options of the pair-feature computation.
struct PairFeatureOptions {
  /// Use |v1 - v2| for the property-vector difference instead of v1 - v2.
  /// The absolute difference keeps the pair feature order-independent,
  /// which matches the undirected pair semantics (ablated in
  /// feature_ablation_bench).
  bool absolute_difference = true;
  /// Divide edit-style distances (OSA, Levenshtein, Damerau-Levenshtein,
  /// LCS) by max(|name1|, |name2|) so all string-distance features share
  /// the [0, 1] scale of the q-gram profile / Jaro-Winkler distances.
  bool normalize_string_distances = true;
  /// Cap on the instances aggregated per property (0 = use all).
  size_t max_instances_per_property = 0;
};

/// Whether a pair-feature slot derives from instance values or from
/// property names — the first ablation dimension of the paper's §V-A.
enum class FeatureOrigin : int {
  kInstance = 0,
  kName = 1,
};

/// Metadata of one slot of the pair feature vector.
struct FeatureSlot {
  std::string name;       ///< diagnostic name, e.g. "diff.char.upper.frac"
  FeatureOrigin origin;   ///< instance-derived or name-derived
  bool is_embedding;      ///< true for embedding-vector components
};

/// Which feature origins a configuration keeps (paper §V-A rows).
enum class OriginSelection : int {
  kInstancesOnly = 0,
  kNamesOnly = 1,
  kBoth = 2,
};

/// Which feature kinds a configuration keeps (paper §V-A columns).
enum class KindSelection : int {
  kEmbeddingsOnly = 0,
  kNonEmbeddingsOnly = 1,
  kBoth = 2,
};

/// One of the nine feature configurations of the evaluation
/// (3 origins x 3 kinds).
struct FeatureConfig {
  OriginSelection origin = OriginSelection::kBoth;
  KindSelection kinds = KindSelection::kBoth;

  /// "both/embeddings", "names/all", ... used in reports.
  std::string ToString() const;

  friend bool operator==(const FeatureConfig&, const FeatureConfig&) = default;
};

/// All nine configurations in the paper's row-major order (instances,
/// names, both) x (embeddings, non-embeddings, both).
std::vector<FeatureConfig> AllFeatureConfigs();

/// The slot ranges one registered stage owns: [property_begin,
/// property_end) in the per-property vector and [pair_begin, pair_end) in
/// the pair vector. A pair-only stage (string distances) has an empty
/// property range.
struct StageSpan {
  const FeatureStage* stage = nullptr;
  size_t property_begin = 0;
  size_t property_end = 0;
  size_t pair_begin = 0;
  size_t pair_end = 0;

  size_t property_width() const { return property_end - property_begin; }
  size_t pair_width() const { return pair_end - pair_begin; }
};

/// Describes the full pair feature vector layout for a given embedding
/// dimension d, derived by composing the stages of a FeatureRegistry in
/// registration order. The built-in registry reproduces Table I: the
/// element-wise property-vector difference (29 + 2d slots) followed by
/// the 8 name string distances; with d = 300 the total is 637, matching
/// the paper.
///
/// The schema also carries a canonical fingerprint of the layout (stage
/// names + versions, embedding dimension, and the PairFeatureOptions that
/// shape the computed values). Persisted models record it so a loader can
/// prove its live pipeline computes the same design matrix the model was
/// trained on.
class FeatureSchema {
 public:
  /// Builds the schema of the built-in registry with default options.
  explicit FeatureSchema(size_t embedding_dim);

  /// Builds the schema for `registry` (must outlive the schema).
  FeatureSchema(const FeatureRegistry* registry, size_t embedding_dim,
                const PairFeatureOptions& options);

  size_t embedding_dim() const { return embedding_dim_; }
  size_t size() const { return slots_.size(); }
  const std::vector<FeatureSlot>& slots() const { return slots_; }
  const FeatureSlot& slot(size_t i) const { return slots_[i]; }

  /// Width of the per-property feature vector (29 + 2d built-in).
  size_t property_dimension() const { return property_dimension_; }

  /// The registry this schema was derived from.
  const FeatureRegistry& registry() const { return *registry_; }

  /// Stage slot ranges in composition order.
  const std::vector<StageSpan>& stages() const { return stages_; }

  /// The span of stage `name`, or nullptr when not registered.
  const StageSpan* FindStage(std::string_view name) const;

  /// Indices of the slots kept by `config`, in ascending order.
  std::vector<size_t> SelectedColumns(const FeatureConfig& config) const;

  /// Indices of the pair slots owned by the named stages, ascending and
  /// de-duplicated. Unknown names are an InvalidArgument listing the
  /// registered stages.
  StatusOr<std::vector<size_t>> StageColumns(
      const std::vector<std::string>& stage_names) const;

  /// Canonical human-readable description the fingerprint hashes, e.g.
  ///   dim=16;abs_diff=1;norm_dist=1;max_inst=0;
  ///   stages=char_class_meta@1,...,string_distances@1
  const std::string& canonical() const { return canonical_; }

  /// Stable fingerprint of the layout: "lmf1-" + 16 hex digits of the
  /// FNV-1a hash of canonical(). Equal fingerprints mean bit-identical
  /// design matrices for the same inputs.
  const std::string& fingerprint() const { return fingerprint_; }

  // Layout constants of the built-in registry (offsets into the pair
  // vector).
  static constexpr size_t kCharClassFeatures = 18;  // 9 classes x {frac,count}
  static constexpr size_t kTokenClassFeatures = 10;  // 5 classes x {frac,count}
  static constexpr size_t kNumericValueFeatures = 1;
  static constexpr size_t kMetaFeatures =
      kCharClassFeatures + kTokenClassFeatures + kNumericValueFeatures;  // 29
  static constexpr size_t kStringDistanceFeatures = 8;  // Table I ids 8-15

  /// Dimension of one instance feature vector: 29 + d (paper: 329).
  static size_t InstanceDimension(size_t embedding_dim) {
    return kMetaFeatures + embedding_dim;
  }
  /// Dimension of one property feature vector: 29 + 2d (paper: 629).
  static size_t PropertyDimension(size_t embedding_dim) {
    return kMetaFeatures + 2 * embedding_dim;
  }
  /// Dimension of one pair feature vector: 37 + 2d (paper: 637).
  static size_t PairDimension(size_t embedding_dim) {
    return PropertyDimension(embedding_dim) + kStringDistanceFeatures;
  }

 private:
  const FeatureRegistry* registry_;
  size_t embedding_dim_;
  size_t property_dimension_ = 0;
  std::vector<FeatureSlot> slots_;
  std::vector<StageSpan> stages_;
  std::string canonical_;
  std::string fingerprint_;
};

}  // namespace leapme::features

#endif  // LEAPME_FEATURES_FEATURE_SCHEMA_H_
