#ifndef LEAPME_FEATURES_FEATURE_SCHEMA_H_
#define LEAPME_FEATURES_FEATURE_SCHEMA_H_

#include <cstddef>
#include <string>
#include <vector>

namespace leapme::features {

/// Whether a pair-feature slot derives from instance values or from
/// property names — the first ablation dimension of the paper's §V-A.
enum class FeatureOrigin : int {
  kInstance = 0,
  kName = 1,
};

/// Metadata of one slot of the pair feature vector.
struct FeatureSlot {
  std::string name;       ///< diagnostic name, e.g. "diff.char.upper.frac"
  FeatureOrigin origin;   ///< instance-derived or name-derived
  bool is_embedding;      ///< true for embedding-vector components
};

/// Which feature origins a configuration keeps (paper §V-A rows).
enum class OriginSelection : int {
  kInstancesOnly = 0,
  kNamesOnly = 1,
  kBoth = 2,
};

/// Which feature kinds a configuration keeps (paper §V-A columns).
enum class KindSelection : int {
  kEmbeddingsOnly = 0,
  kNonEmbeddingsOnly = 1,
  kBoth = 2,
};

/// One of the nine feature configurations of the evaluation
/// (3 origins x 3 kinds).
struct FeatureConfig {
  OriginSelection origin = OriginSelection::kBoth;
  KindSelection kinds = KindSelection::kBoth;

  /// "both/embeddings", "names/all", ... used in reports.
  std::string ToString() const;

  friend bool operator==(const FeatureConfig&, const FeatureConfig&) = default;
};

/// All nine configurations in the paper's row-major order (instances,
/// names, both) x (embeddings, non-embeddings, both).
std::vector<FeatureConfig> AllFeatureConfigs();

/// Describes the full pair feature vector layout for a given embedding
/// dimension d (Table I): element-wise property-vector difference
/// (29 + 2d slots) followed by the 8 name string distances. With d = 300
/// the total is 637, matching the paper.
class FeatureSchema {
 public:
  /// Builds the schema for embedding dimension `embedding_dim`.
  explicit FeatureSchema(size_t embedding_dim);

  size_t embedding_dim() const { return embedding_dim_; }
  size_t size() const { return slots_.size(); }
  const std::vector<FeatureSlot>& slots() const { return slots_; }
  const FeatureSlot& slot(size_t i) const { return slots_[i]; }

  /// Indices of the slots kept by `config`, in ascending order.
  std::vector<size_t> SelectedColumns(const FeatureConfig& config) const;

  // Layout constants (offsets into the pair vector).
  static constexpr size_t kCharClassFeatures = 18;  // 9 classes x {frac,count}
  static constexpr size_t kTokenClassFeatures = 10;  // 5 classes x {frac,count}
  static constexpr size_t kNumericValueFeatures = 1;
  static constexpr size_t kMetaFeatures =
      kCharClassFeatures + kTokenClassFeatures + kNumericValueFeatures;  // 29
  static constexpr size_t kStringDistanceFeatures = 8;  // Table I ids 8-15

  /// Dimension of one instance feature vector: 29 + d (paper: 329).
  static size_t InstanceDimension(size_t embedding_dim) {
    return kMetaFeatures + embedding_dim;
  }
  /// Dimension of one property feature vector: 29 + 2d (paper: 629).
  static size_t PropertyDimension(size_t embedding_dim) {
    return kMetaFeatures + 2 * embedding_dim;
  }
  /// Dimension of one pair feature vector: 37 + 2d (paper: 637).
  static size_t PairDimension(size_t embedding_dim) {
    return PropertyDimension(embedding_dim) + kStringDistanceFeatures;
  }

 private:
  size_t embedding_dim_;
  std::vector<FeatureSlot> slots_;
};

}  // namespace leapme::features

#endif  // LEAPME_FEATURES_FEATURE_SCHEMA_H_
