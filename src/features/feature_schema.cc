#include "features/feature_schema.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "features/feature_registry.h"

namespace leapme::features {

namespace {

const char* OriginName(OriginSelection origin) {
  switch (origin) {
    case OriginSelection::kInstancesOnly:
      return "instances";
    case OriginSelection::kNamesOnly:
      return "names";
    case OriginSelection::kBoth:
      return "both";
  }
  return "?";
}

const char* KindName(KindSelection kinds) {
  switch (kinds) {
    case KindSelection::kEmbeddingsOnly:
      return "embeddings";
    case KindSelection::kNonEmbeddingsOnly:
      return "non-embeddings";
    case KindSelection::kBoth:
      return "all";
  }
  return "?";
}

uint64_t Fnv1a64(std::string_view text) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : text) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

std::string FeatureConfig::ToString() const {
  return StrFormat("%s/%s", OriginName(origin), KindName(kinds));
}

std::vector<FeatureConfig> AllFeatureConfigs() {
  std::vector<FeatureConfig> configs;
  for (OriginSelection origin :
       {OriginSelection::kInstancesOnly, OriginSelection::kNamesOnly,
        OriginSelection::kBoth}) {
    for (KindSelection kinds :
         {KindSelection::kEmbeddingsOnly, KindSelection::kNonEmbeddingsOnly,
          KindSelection::kBoth}) {
      configs.push_back(FeatureConfig{origin, kinds});
    }
  }
  return configs;
}

FeatureSchema::FeatureSchema(size_t embedding_dim)
    : FeatureSchema(&FeatureRegistry::BuiltIn(), embedding_dim,
                    PairFeatureOptions{}) {}

FeatureSchema::FeatureSchema(const FeatureRegistry* registry,
                             size_t embedding_dim,
                             const PairFeatureOptions& options)
    : registry_(registry), embedding_dim_(embedding_dim) {
  LEAPME_CHECK(registry_ != nullptr);
  stages_.reserve(registry_->size());
  std::string stage_list;
  for (const FeatureStage* stage : registry_->stages()) {
    StageSpan span;
    span.stage = stage;
    span.property_begin = property_dimension_;
    span.property_end = property_dimension_ + stage->property_width(embedding_dim);
    span.pair_begin = slots_.size();
    stage->DescribePairSlots(embedding_dim, &slots_);
    span.pair_end = slots_.size();
    LEAPME_CHECK_EQ(span.pair_width(), stage->pair_width(embedding_dim));
    property_dimension_ = span.property_end;
    stages_.push_back(span);
    if (!stage_list.empty()) stage_list.push_back(',');
    stage_list.append(stage->name());
    stage_list.append(StrFormat("@%d", stage->version()));
  }
  canonical_ = StrFormat(
      "dim=%zu;abs_diff=%d;norm_dist=%d;max_inst=%zu;stages=%s",
      embedding_dim, options.absolute_difference ? 1 : 0,
      options.normalize_string_distances ? 1 : 0,
      options.max_instances_per_property, stage_list.c_str());
  fingerprint_ = StrFormat("lmf1-%016llx",
                           static_cast<unsigned long long>(Fnv1a64(canonical_)));
}

const StageSpan* FeatureSchema::FindStage(std::string_view name) const {
  for (const StageSpan& span : stages_) {
    if (span.stage->name() == name) return &span;
  }
  return nullptr;
}

std::vector<size_t> FeatureSchema::SelectedColumns(
    const FeatureConfig& config) const {
  std::vector<size_t> columns;
  for (size_t i = 0; i < slots_.size(); ++i) {
    const FeatureSlot& slot = slots_[i];
    bool origin_ok =
        config.origin == OriginSelection::kBoth ||
        (config.origin == OriginSelection::kInstancesOnly &&
         slot.origin == FeatureOrigin::kInstance) ||
        (config.origin == OriginSelection::kNamesOnly &&
         slot.origin == FeatureOrigin::kName);
    bool kind_ok =
        config.kinds == KindSelection::kBoth ||
        (config.kinds == KindSelection::kEmbeddingsOnly && slot.is_embedding) ||
        (config.kinds == KindSelection::kNonEmbeddingsOnly &&
         !slot.is_embedding);
    if (origin_ok && kind_ok) {
      columns.push_back(i);
    }
  }
  return columns;
}

StatusOr<std::vector<size_t>> FeatureSchema::StageColumns(
    const std::vector<std::string>& stage_names) const {
  std::vector<size_t> columns;
  for (const std::string& name : stage_names) {
    const StageSpan* span = FindStage(name);
    if (span == nullptr) {
      return Status::InvalidArgument(
          StrFormat("unknown feature stage '%s' (registered: %s)",
                    name.c_str(), registry_->StageNames().c_str()));
    }
    for (size_t i = span->pair_begin; i < span->pair_end; ++i) {
      columns.push_back(i);
    }
  }
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  return columns;
}

}  // namespace leapme::features
