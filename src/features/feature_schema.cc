#include "features/feature_schema.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace leapme::features {

namespace {

const char* OriginName(OriginSelection origin) {
  switch (origin) {
    case OriginSelection::kInstancesOnly:
      return "instances";
    case OriginSelection::kNamesOnly:
      return "names";
    case OriginSelection::kBoth:
      return "both";
  }
  return "?";
}

const char* KindName(KindSelection kinds) {
  switch (kinds) {
    case KindSelection::kEmbeddingsOnly:
      return "embeddings";
    case KindSelection::kNonEmbeddingsOnly:
      return "non-embeddings";
    case KindSelection::kBoth:
      return "all";
  }
  return "?";
}

constexpr const char* kCharClassNames[] = {
    "upper", "lower", "letter_other", "mark", "number",
    "punct", "symbol", "separator", "other"};

constexpr const char* kTokenClassNames[] = {
    "word", "lower_word", "capitalized", "upper_word", "numeric"};

}  // namespace

std::string FeatureConfig::ToString() const {
  return StrFormat("%s/%s", OriginName(origin), KindName(kinds));
}

std::vector<FeatureConfig> AllFeatureConfigs() {
  std::vector<FeatureConfig> configs;
  for (OriginSelection origin :
       {OriginSelection::kInstancesOnly, OriginSelection::kNamesOnly,
        OriginSelection::kBoth}) {
    for (KindSelection kinds :
         {KindSelection::kEmbeddingsOnly, KindSelection::kNonEmbeddingsOnly,
          KindSelection::kBoth}) {
      configs.push_back(FeatureConfig{origin, kinds});
    }
  }
  return configs;
}

FeatureSchema::FeatureSchema(size_t embedding_dim)
    : embedding_dim_(embedding_dim) {
  slots_.reserve(PairDimension(embedding_dim));
  // Difference of the two property vectors (Table I id 7), in property
  // vector layout order:
  //   meta features averaged from instances (ids 1-3) ...
  for (const char* name : kCharClassNames) {
    slots_.push_back({StrFormat("diff.char.%s.frac", name),
                      FeatureOrigin::kInstance, false});
    slots_.push_back({StrFormat("diff.char.%s.count", name),
                      FeatureOrigin::kInstance, false});
  }
  for (const char* name : kTokenClassNames) {
    slots_.push_back({StrFormat("diff.token.%s.frac", name),
                      FeatureOrigin::kInstance, false});
    slots_.push_back({StrFormat("diff.token.%s.count", name),
                      FeatureOrigin::kInstance, false});
  }
  slots_.push_back({"diff.numeric_value", FeatureOrigin::kInstance, false});
  //   ... then the averaged value-word embedding (id 4) ...
  for (size_t i = 0; i < embedding_dim; ++i) {
    slots_.push_back({StrFormat("diff.value_emb.%zu", i),
                      FeatureOrigin::kInstance, true});
  }
  //   ... then the name-word embedding (id 6).
  for (size_t i = 0; i < embedding_dim; ++i) {
    slots_.push_back(
        {StrFormat("diff.name_emb.%zu", i), FeatureOrigin::kName, true});
  }
  // Name string distances (Table I ids 8-15).
  for (const char* name :
       {"osa", "levenshtein", "damerau_levenshtein", "lcs", "qgram3",
        "cosine3", "jaccard3", "jaro_winkler"}) {
    slots_.push_back(
        {StrFormat("dist.%s", name), FeatureOrigin::kName, false});
  }
  LEAPME_CHECK_EQ(slots_.size(), PairDimension(embedding_dim));
}

std::vector<size_t> FeatureSchema::SelectedColumns(
    const FeatureConfig& config) const {
  std::vector<size_t> columns;
  for (size_t i = 0; i < slots_.size(); ++i) {
    const FeatureSlot& slot = slots_[i];
    bool origin_ok =
        config.origin == OriginSelection::kBoth ||
        (config.origin == OriginSelection::kInstancesOnly &&
         slot.origin == FeatureOrigin::kInstance) ||
        (config.origin == OriginSelection::kNamesOnly &&
         slot.origin == FeatureOrigin::kName);
    bool kind_ok =
        config.kinds == KindSelection::kBoth ||
        (config.kinds == KindSelection::kEmbeddingsOnly && slot.is_embedding) ||
        (config.kinds == KindSelection::kNonEmbeddingsOnly &&
         !slot.is_embedding);
    if (origin_ok && kind_ok) {
      columns.push_back(i);
    }
  }
  return columns;
}

}  // namespace leapme::features
