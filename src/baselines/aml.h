#ifndef LEAPME_BASELINES_AML_H_
#define LEAPME_BASELINES_AML_H_

#include <string>
#include <vector>

#include "baselines/pair_matcher.h"

namespace leapme::baselines {

/// Options for AmlMatcher.
struct AmlOptions {
  /// Minimum combined lexical similarity for a match. AML's string
  /// matchers are conservative: they trade recall for precision.
  double threshold = 0.9;
};

/// AML-style unsupervised lexical matcher (AgreementMakerLight [14]).
///
/// Reproduces the core of AML's string-matcher + selector pipeline on
/// property names: names are normalized (lower-cased, punctuation
/// stripped), and the pair similarity is the maximum of
///   - exact normalized-name equality (similarity 1),
///   - word-set Jaccard similarity,
///   - Jaro-Winkler similarity,
///   - longest-common-subsequence similarity.
/// Pairs at or above the threshold match. No instance data and no
/// training data are used.
class AmlMatcher final : public PairMatcher {
 public:
  explicit AmlMatcher(AmlOptions options = {}) : options_(options) {}

  std::string Name() const override { return "AML"; }
  Status Fit(const data::Dataset& dataset,
             const std::vector<data::LabeledPair>& training_pairs) override;
  StatusOr<std::vector<int32_t>> ClassifyPairs(
      const std::vector<data::PropertyPair>& pairs) override;
  StatusOr<std::vector<double>> ScorePairs(
      const std::vector<data::PropertyPair>& pairs) override;

  /// Lexical similarity in [0, 1] of two raw property names (exposed for
  /// tests and for the SemProp syntactic matcher).
  static double NameSimilarity(const std::string& a, const std::string& b);

  /// Word-overlap-only similarity (no character-level metrics): 0 for
  /// names sharing no token. This is the TF-IDF-flavored signal SemProp's
  /// SynM thresholds at 0.2.
  static double TokenSimilarity(const std::string& a, const std::string& b);

 private:
  AmlOptions options_;
  std::vector<std::string> normalized_names_;
  bool fitted_ = false;
};

}  // namespace leapme::baselines

#endif  // LEAPME_BASELINES_AML_H_
