#include "baselines/semprop.h"

#include <algorithm>

#include "baselines/aml.h"
#include "text/tokenizer.h"

namespace leapme::baselines {

Status SemPropMatcher::Fit(const data::Dataset& dataset,
                           const std::vector<data::LabeledPair>&) {
  names_.clear();
  name_embeddings_.clear();
  names_.reserve(dataset.property_count());
  name_embeddings_.reserve(dataset.property_count());
  for (data::PropertyId id = 0; id < dataset.property_count(); ++id) {
    const std::string& name = dataset.property(id).name;
    names_.push_back(name);
    name_embeddings_.push_back(embedding::AverageEmbedding(
        *model_, text::EmbeddingWords(name)));
  }
  fitted_ = true;
  return Status::OK();
}

StatusOr<std::vector<double>> SemPropMatcher::ScorePairs(
    const std::vector<data::PropertyPair>& pairs) {
  if (!fitted_) {
    return Status::FailedPrecondition("ScorePairs called before Fit");
  }
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (const data::PropertyPair& pair : pairs) {
    double sema = embedding::CosineSimilarity(name_embeddings_[pair.a],
                                              name_embeddings_[pair.b]);
    double synm = AmlMatcher::TokenSimilarity(names_[pair.a], names_[pair.b]);
    // Report the stronger of the two signals, clamped to [0, 1].
    scores.push_back(std::clamp(std::max(sema, synm), 0.0, 1.0));
  }
  return scores;
}

StatusOr<std::vector<int32_t>> SemPropMatcher::ClassifyPairs(
    const std::vector<data::PropertyPair>& pairs) {
  if (!fitted_) {
    return Status::FailedPrecondition("ClassifyPairs called before Fit");
  }
  std::vector<int32_t> decisions(pairs.size(), 0);
  for (size_t i = 0; i < pairs.size(); ++i) {
    const data::PropertyPair& pair = pairs[i];
    double sema = embedding::CosineSimilarity(name_embeddings_[pair.a],
                                              name_embeddings_[pair.b]);
    if (sema >= options_.sema_positive_threshold) {
      decisions[i] = 1;  // SeMa(+) match
      continue;
    }
    double synm = AmlMatcher::TokenSimilarity(names_[pair.a], names_[pair.b]);
    if (synm >= options_.synm_threshold &&
        sema >= options_.sema_negative_threshold) {
      decisions[i] = 1;  // SynM candidate surviving SeMa(-)
    }
  }
  return decisions;
}

}  // namespace leapme::baselines
