#include "baselines/pair_matcher.h"

namespace leapme::baselines {

StatusOr<std::vector<double>> PairMatcher::ScorePairs(
    const std::vector<data::PropertyPair>& pairs) {
  LEAPME_ASSIGN_OR_RETURN(std::vector<int32_t> decisions,
                          ClassifyPairs(pairs));
  std::vector<double> scores(decisions.size());
  for (size_t i = 0; i < decisions.size(); ++i) {
    scores[i] = decisions[i] != 0 ? 1.0 : 0.0;
  }
  return scores;
}

}  // namespace leapme::baselines
