#ifndef LEAPME_BASELINES_SEMPROP_H_
#define LEAPME_BASELINES_SEMPROP_H_

#include <string>
#include <vector>

#include "baselines/pair_matcher.h"
#include "embedding/embedding_model.h"

namespace leapme::baselines {

/// Options for SemPropMatcher, defaulting to the thresholds the paper used
/// for its SemProp runs (§V-A): SynM 0.2, SeMa(-) 0.2, SeMa(+) 0.4.
struct SemPropOptions {
  /// Minimum syntactic (lexical) name similarity for the syntactic matcher
  /// SynM to emit a candidate.
  double synm_threshold = 0.2;
  /// SeMa(-): candidates whose semantic coherence falls below this are
  /// discarded (negative semantic evidence).
  double sema_negative_threshold = 0.2;
  /// SeMa(+): semantic coherence at or above this is a match on its own.
  double sema_positive_threshold = 0.4;
};

/// SemProp-style unsupervised matcher (Fernandez et al., "Seeping
/// Semantics" [15]): links schema elements through word embeddings.
///
/// Two signals are combined:
///   - SynM: lexical similarity of the names (AML-style combined string
///     similarity).
///   - SeMa: semantic coherence — cosine similarity between the average
///     word embeddings of the two names.
/// A pair matches when SeMa >= SeMa(+), or when SynM >= SynM-threshold and
/// SeMa >= SeMa(-) (syntactic candidates surviving the negative semantic
/// filter). Unsupervised; no instance values.
class SemPropMatcher final : public PairMatcher {
 public:
  /// `model` must outlive the matcher.
  SemPropMatcher(const embedding::EmbeddingModel* model,
                 SemPropOptions options = {})
      : model_(model), options_(options) {}

  std::string Name() const override { return "SemProp"; }
  Status Fit(const data::Dataset& dataset,
             const std::vector<data::LabeledPair>& training_pairs) override;
  StatusOr<std::vector<int32_t>> ClassifyPairs(
      const std::vector<data::PropertyPair>& pairs) override;
  StatusOr<std::vector<double>> ScorePairs(
      const std::vector<data::PropertyPair>& pairs) override;

 private:
  const embedding::EmbeddingModel* model_;
  SemPropOptions options_;
  std::vector<std::string> names_;
  std::vector<embedding::Vector> name_embeddings_;
  bool fitted_ = false;
};

}  // namespace leapme::baselines

#endif  // LEAPME_BASELINES_SEMPROP_H_
