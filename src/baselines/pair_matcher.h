#ifndef LEAPME_BASELINES_PAIR_MATCHER_H_
#define LEAPME_BASELINES_PAIR_MATCHER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "data/dataset.h"
#include "data/splitting.h"

namespace leapme::baselines {

/// Uniform interface over the property-matching systems compared in the
/// evaluation: LEAPME itself (via an adapter in eval/) and the five
/// baselines (AML, FCA-Map, Nezhadi, SemProp, LSH).
class PairMatcher {
 public:
  virtual ~PairMatcher() = default;

  /// Display name used in the results tables.
  virtual std::string Name() const = 0;

  /// True when the matcher consumes labeled training pairs.
  virtual bool IsSupervised() const { return false; }

  /// Prepares matcher state from `dataset` (per-property indexes, and for
  /// supervised matchers a trained model from `training_pairs`;
  /// unsupervised matchers ignore the pairs and never read the
  /// ground-truth references).
  virtual Status Fit(const data::Dataset& dataset,
                     const std::vector<data::LabeledPair>& training_pairs) = 0;

  /// Hard 0/1 match decision for each pair. Requires a successful Fit.
  virtual StatusOr<std::vector<int32_t>> ClassifyPairs(
      const std::vector<data::PropertyPair>& pairs) = 0;

  /// Similarity scores in [0, 1] for each pair (defaults to the hard
  /// decisions when a matcher has no graded score).
  virtual StatusOr<std::vector<double>> ScorePairs(
      const std::vector<data::PropertyPair>& pairs);
};

}  // namespace leapme::baselines

#endif  // LEAPME_BASELINES_PAIR_MATCHER_H_
