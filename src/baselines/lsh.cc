#include "baselines/lsh.h"

#include <limits>
#include <set>

#include "common/rng.h"
#include "text/tokenizer.h"

namespace leapme::baselines {

Status LshMatcher::Fit(const data::Dataset& dataset,
                       const std::vector<data::LabeledPair>&) {
  if (options_.bands == 0 || options_.band_size == 0) {
    return Status::InvalidArgument("bands and band_size must be positive");
  }
  const size_t signature_length = options_.bands * options_.band_size;

  // Hash-function seeds derived from the master seed.
  std::vector<uint64_t> hash_seeds(signature_length);
  Rng seed_rng(options_.seed);
  for (uint64_t& seed : hash_seeds) {
    seed = seed_rng.Next();
  }

  signatures_.assign(dataset.property_count(), {});
  token_counts_.assign(dataset.property_count(), 0);
  for (data::PropertyId id = 0; id < dataset.property_count(); ++id) {
    std::set<std::string> tokens;
    for (const data::InstanceValue& instance : dataset.instances(id)) {
      for (const std::string& token :
           text::EmbeddingWords(instance.value)) {
        tokens.insert(token);
      }
    }
    token_counts_[id] = tokens.size();
    std::vector<uint64_t>& signature = signatures_[id];
    signature.assign(signature_length,
                     std::numeric_limits<uint64_t>::max());
    for (const std::string& token : tokens) {
      uint64_t token_hash = HashBytes(token.data(), token.size());
      for (size_t h = 0; h < signature_length; ++h) {
        uint64_t value = Mix64(token_hash ^ hash_seeds[h]);
        if (value < signature[h]) {
          signature[h] = value;
        }
      }
    }
  }
  fitted_ = true;
  return Status::OK();
}

double LshMatcher::EstimatedJaccard(data::PropertyId a,
                                    data::PropertyId b) const {
  const auto& sa = signatures_[a];
  const auto& sb = signatures_[b];
  if (sa.empty() || sb.empty()) return 0.0;
  size_t agree = 0;
  for (size_t h = 0; h < sa.size(); ++h) {
    if (sa[h] == sb[h]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(sa.size());
}

StatusOr<std::vector<int32_t>> LshMatcher::ClassifyPairs(
    const std::vector<data::PropertyPair>& pairs) {
  if (!fitted_) {
    return Status::FailedPrecondition("ClassifyPairs called before Fit");
  }
  std::vector<int32_t> decisions(pairs.size(), 0);
  for (size_t i = 0; i < pairs.size(); ++i) {
    data::PropertyId a = pairs[i].a;
    data::PropertyId b = pairs[i].b;
    if (token_counts_[a] < options_.min_tokens ||
        token_counts_[b] < options_.min_tokens) {
      continue;
    }
    const auto& sa = signatures_[a];
    const auto& sb = signatures_[b];
    // Banding: a collision in any complete band is a candidate -> match.
    for (size_t band = 0; band < options_.bands; ++band) {
      bool band_equal = true;
      for (size_t row = 0; row < options_.band_size; ++row) {
        size_t h = band * options_.band_size + row;
        if (sa[h] != sb[h]) {
          band_equal = false;
          break;
        }
      }
      if (band_equal) {
        decisions[i] = 1;
        break;
      }
    }
  }
  return decisions;
}

StatusOr<std::vector<double>> LshMatcher::ScorePairs(
    const std::vector<data::PropertyPair>& pairs) {
  if (!fitted_) {
    return Status::FailedPrecondition("ScorePairs called before Fit");
  }
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (const data::PropertyPair& pair : pairs) {
    scores.push_back(EstimatedJaccard(pair.a, pair.b));
  }
  return scores;
}

}  // namespace leapme::baselines
