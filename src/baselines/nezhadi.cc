#include "baselines/nezhadi.h"

#include <algorithm>

#include "common/logging.h"
#include "ml/adaboost.h"
#include "ml/decision_tree.h"
#include "ml/logistic_regression.h"
#include "text/string_metrics.h"
#include "text/tokenizer.h"

namespace leapme::baselines {

namespace {

double TokenOverlap(const std::string& a, const std::string& b) {
  std::vector<std::string> ta = text::EmbeddingWords(a);
  std::vector<std::string> tb = text::EmbeddingWords(b);
  if (ta.empty() || tb.empty()) return 0.0;
  std::sort(ta.begin(), ta.end());
  std::sort(tb.begin(), tb.end());
  std::vector<std::string> common;
  std::set_intersection(ta.begin(), ta.end(), tb.begin(), tb.end(),
                        std::back_inserter(common));
  return static_cast<double>(common.size()) /
         static_cast<double>(std::min(ta.size(), tb.size()));
}

double CommonPrefixRatio(const std::string& a, const std::string& b) {
  size_t limit = std::min(a.size(), b.size());
  if (limit == 0) return 0.0;
  size_t i = 0;
  while (i < limit && a[i] == b[i]) ++i;
  return static_cast<double>(i) / static_cast<double>(limit);
}

double CommonSuffixRatio(const std::string& a, const std::string& b) {
  size_t limit = std::min(a.size(), b.size());
  if (limit == 0) return 0.0;
  size_t i = 0;
  while (i < limit && a[a.size() - 1 - i] == b[b.size() - 1 - i]) ++i;
  return static_cast<double>(i) / static_cast<double>(limit);
}

std::unique_ptr<ml::BinaryClassifier> MakeLearner(NezhadiLearner learner) {
  switch (learner) {
    case NezhadiLearner::kAdaBoost:
      return std::make_unique<ml::AdaBoost>();
    case NezhadiLearner::kDecisionTree:
      return std::make_unique<ml::DecisionTree>();
    case NezhadiLearner::kLogisticRegression:
      return std::make_unique<ml::LogisticRegression>();
  }
  LEAPME_LOG(Fatal) << "unknown Nezhadi learner";
  return nullptr;
}

}  // namespace

NezhadiMatcher::NezhadiMatcher(NezhadiOptions options)
    : options_(options), classifier_(MakeLearner(options.learner)) {}

void NezhadiMatcher::PairFeatures(const std::string& a, const std::string& b,
                                  std::span<float> out) {
  LEAPME_CHECK_EQ(out.size(), kFeatureCount);
  size_t i = 0;
  out[i++] = static_cast<float>(
      1.0 - text::NormalizedByMaxLength(text::Levenshtein(a, b), a, b));
  out[i++] = static_cast<float>(1.0 - text::NormalizedByMaxLength(
                                          text::OptimalStringAlignment(a, b),
                                          a, b));
  out[i++] = static_cast<float>(
      1.0 - text::NormalizedByMaxLength(text::LcsDistance(a, b), a, b));
  out[i++] = static_cast<float>(1.0 - text::ThreeGramCosineDistance(a, b));
  out[i++] = static_cast<float>(1.0 - text::ThreeGramJaccardDistance(a, b));
  out[i++] = static_cast<float>(text::JaroWinklerSimilarity(a, b));
  out[i++] = static_cast<float>(TokenOverlap(a, b));
  out[i++] = static_cast<float>(CommonPrefixRatio(a, b));
  out[i++] = static_cast<float>(CommonSuffixRatio(a, b));
  double length_ratio =
      a.empty() || b.empty()
          ? 0.0
          : static_cast<double>(std::min(a.size(), b.size())) /
                static_cast<double>(std::max(a.size(), b.size()));
  out[i++] = static_cast<float>(length_ratio);
}

nn::Matrix NezhadiMatcher::BuildDesign(
    const std::vector<data::PropertyPair>& pairs) const {
  nn::Matrix design(pairs.size(), kFeatureCount);
  for (size_t i = 0; i < pairs.size(); ++i) {
    PairFeatures(names_[pairs[i].a], names_[pairs[i].b], design.row(i));
  }
  return design;
}

Status NezhadiMatcher::Fit(
    const data::Dataset& dataset,
    const std::vector<data::LabeledPair>& training_pairs) {
  if (training_pairs.empty()) {
    return Status::InvalidArgument("Nezhadi requires labeled training pairs");
  }
  names_.clear();
  names_.reserve(dataset.property_count());
  for (data::PropertyId id = 0; id < dataset.property_count(); ++id) {
    names_.push_back(dataset.property(id).name);
  }

  std::vector<data::PropertyPair> pairs;
  std::vector<int32_t> labels;
  for (const data::LabeledPair& labeled : training_pairs) {
    pairs.push_back(labeled.pair);
    labels.push_back(labeled.label != 0 ? 1 : 0);
  }
  nn::Matrix design = BuildDesign(pairs);
  LEAPME_RETURN_IF_ERROR(classifier_->Fit(design, labels));
  fitted_ = true;
  return Status::OK();
}

StatusOr<std::vector<double>> NezhadiMatcher::ScorePairs(
    const std::vector<data::PropertyPair>& pairs) {
  if (!fitted_) {
    return Status::FailedPrecondition("ScorePairs called before Fit");
  }
  return classifier_->PredictProbability(BuildDesign(pairs));
}

StatusOr<std::vector<int32_t>> NezhadiMatcher::ClassifyPairs(
    const std::vector<data::PropertyPair>& pairs) {
  LEAPME_ASSIGN_OR_RETURN(std::vector<double> scores, ScorePairs(pairs));
  std::vector<int32_t> decisions(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    decisions[i] = scores[i] >= options_.decision_threshold ? 1 : 0;
  }
  return decisions;
}

}  // namespace leapme::baselines
