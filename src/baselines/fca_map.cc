#include "baselines/fca_map.h"

#include <algorithm>

#include "text/tokenizer.h"

namespace leapme::baselines {

Status FcaMapMatcher::Fit(const data::Dataset& dataset,
                          const std::vector<data::LabeledPair>&) {
  token_sets_.clear();
  token_sets_.reserve(dataset.property_count());
  for (data::PropertyId id = 0; id < dataset.property_count(); ++id) {
    std::vector<std::string> tokens =
        text::EmbeddingWords(dataset.property(id).name);
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    token_sets_.push_back(std::move(tokens));
  }
  fitted_ = true;
  return Status::OK();
}

StatusOr<std::vector<int32_t>> FcaMapMatcher::ClassifyPairs(
    const std::vector<data::PropertyPair>& pairs) {
  if (!fitted_) {
    return Status::FailedPrecondition("ClassifyPairs called before Fit");
  }
  std::vector<int32_t> decisions(pairs.size(), 0);
  for (size_t i = 0; i < pairs.size(); ++i) {
    const auto& sa = token_sets_[pairs[i].a];
    const auto& sb = token_sets_[pairs[i].b];
    if (sa.empty() || sb.empty()) continue;
    bool match = false;
    if (sa == sb) {
      match = true;  // identical intent: same formal concept
    } else if (options_.allow_subset_intents) {
      const auto& small = sa.size() <= sb.size() ? sa : sb;
      const auto& large = sa.size() <= sb.size() ? sb : sa;
      match = std::includes(large.begin(), large.end(), small.begin(),
                            small.end());
    }
    decisions[i] = match ? 1 : 0;
  }
  return decisions;
}

}  // namespace leapme::baselines
