#include "baselines/aml.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "text/string_metrics.h"
#include "text/tokenizer.h"

namespace leapme::baselines {

namespace {

std::string NormalizeName(const std::string& name) {
  std::vector<std::string> words = text::EmbeddingWords(name);
  return JoinStrings(words, " ");
}

// Word-overlap similarity in the spirit of AML's WordMatcher: Jaccard
// overlap of the token sets, with full containment of the smaller set
// scored almost as high as equality (AML weighs shared words against each
// name's own words, so "weight" vs "product weight" scores high).
double TokenOverlapSimilarity(const std::string& a, const std::string& b) {
  std::vector<std::string> ta = text::EmbeddingWords(a);
  std::vector<std::string> tb = text::EmbeddingWords(b);
  if (ta.empty() || tb.empty()) return 0.0;
  std::set<std::string> sa(ta.begin(), ta.end());
  std::set<std::string> sb(tb.begin(), tb.end());
  size_t intersection = 0;
  for (const std::string& token : sa) {
    if (sb.count(token) > 0) ++intersection;
  }
  size_t unions = sa.size() + sb.size() - intersection;
  double jaccard =
      static_cast<double>(intersection) / static_cast<double>(unions);
  // Containment only counts as strong evidence when the contained name has
  // at least two words: a single shared head word ("resolution" inside
  // "screen resolution") is weak evidence, and AML's word matcher weighs
  // the unmatched qualifier against it.
  double containment = 0.0;
  if (std::min(sa.size(), sb.size()) >= 2) {
    containment = static_cast<double>(intersection) /
                  static_cast<double>(std::min(sa.size(), sb.size()));
  }
  return std::max(jaccard, 0.95 * containment);
}

double LcsSimilarity(const std::string& a, const std::string& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t lcs = text::LongestCommonSubsequence(a, b);
  return static_cast<double>(2 * lcs) / static_cast<double>(a.size() +
                                                            b.size());
}

}  // namespace

double AmlMatcher::TokenSimilarity(const std::string& a,
                                   const std::string& b) {
  return TokenOverlapSimilarity(NormalizeName(a), NormalizeName(b));
}

double AmlMatcher::NameSimilarity(const std::string& a,
                                  const std::string& b) {
  std::string na = NormalizeName(a);
  std::string nb = NormalizeName(b);
  if (na == nb && !na.empty()) return 1.0;
  double similarity = TokenOverlapSimilarity(na, nb);
  similarity = std::max(similarity, text::JaroWinklerSimilarity(na, nb));
  similarity = std::max(similarity, LcsSimilarity(na, nb));
  return similarity;
}

Status AmlMatcher::Fit(const data::Dataset& dataset,
                       const std::vector<data::LabeledPair>&) {
  normalized_names_.clear();
  normalized_names_.reserve(dataset.property_count());
  for (data::PropertyId id = 0; id < dataset.property_count(); ++id) {
    normalized_names_.push_back(dataset.property(id).name);
  }
  fitted_ = true;
  return Status::OK();
}

StatusOr<std::vector<double>> AmlMatcher::ScorePairs(
    const std::vector<data::PropertyPair>& pairs) {
  if (!fitted_) {
    return Status::FailedPrecondition("ScorePairs called before Fit");
  }
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (const data::PropertyPair& pair : pairs) {
    scores.push_back(NameSimilarity(normalized_names_[pair.a],
                                    normalized_names_[pair.b]));
  }
  return scores;
}

StatusOr<std::vector<int32_t>> AmlMatcher::ClassifyPairs(
    const std::vector<data::PropertyPair>& pairs) {
  LEAPME_ASSIGN_OR_RETURN(std::vector<double> scores, ScorePairs(pairs));
  std::vector<int32_t> decisions(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    decisions[i] = scores[i] >= options_.threshold ? 1 : 0;
  }
  return decisions;
}

}  // namespace leapme::baselines
