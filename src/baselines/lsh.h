#ifndef LEAPME_BASELINES_LSH_H_
#define LEAPME_BASELINES_LSH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/pair_matcher.h"

namespace leapme::baselines {

/// Options for LshMatcher.
struct LshOptions {
  /// Number of minhash functions (signature length = bands * band_size).
  size_t bands = 32;
  /// Rows per band. The paper configured Duan et al. with "minhash with a
  /// band size of 1"; band_size r and band count b put the Jaccard
  /// matching threshold near (1/b)^(1/r). The default r=2 keeps the
  /// candidate probability curve steep enough that incidental token
  /// overlap (shared numbers, units) does not flood the output.
  size_t band_size = 2;
  uint64_t seed = 99;
  /// Properties with fewer distinct value tokens than this never match
  /// (tiny token sets make minhash collisions meaningless).
  size_t min_tokens = 3;
};

/// Instance-based unsupervised matcher after Duan et al. [11]: matching of
/// large ontologies with locality-sensitive hashing.
///
/// Each property is represented by the set of lower-cased tokens of its
/// instance values. Minhash signatures are computed per property and split
/// into bands; two properties match when any band hashes identically —
/// i.e. when their instance token sets are likely similar under Jaccard.
/// Name-agnostic: uses only instance values.
class LshMatcher final : public PairMatcher {
 public:
  explicit LshMatcher(LshOptions options = {}) : options_(options) {}

  std::string Name() const override { return "LSH"; }
  Status Fit(const data::Dataset& dataset,
             const std::vector<data::LabeledPair>& training_pairs) override;
  StatusOr<std::vector<int32_t>> ClassifyPairs(
      const std::vector<data::PropertyPair>& pairs) override;
  StatusOr<std::vector<double>> ScorePairs(
      const std::vector<data::PropertyPair>& pairs) override;

  /// Estimated Jaccard similarity between two properties' token sets from
  /// their minhash signatures (fraction of agreeing hash positions).
  double EstimatedJaccard(data::PropertyId a, data::PropertyId b) const;

 private:
  LshOptions options_;
  std::vector<std::vector<uint64_t>> signatures_;  // per property
  std::vector<size_t> token_counts_;               // distinct tokens
  bool fitted_ = false;
};

}  // namespace leapme::baselines

#endif  // LEAPME_BASELINES_LSH_H_
