#ifndef LEAPME_BASELINES_FCA_MAP_H_
#define LEAPME_BASELINES_FCA_MAP_H_

#include <string>
#include <vector>

#include "baselines/pair_matcher.h"

namespace leapme::baselines {

/// Options for FcaMapMatcher.
struct FcaMapOptions {
  /// Also match when one name's token set strictly contains the other's
  /// (a partial formal concept), not only on identical token intents.
  /// Off by default: the containment rule trades FCA-Map's hallmark
  /// precision for recall.
  bool allow_subset_intents = false;
};

/// FCA-Map-style unsupervised matcher [7], based on formal concept
/// analysis over a token-level formal context.
///
/// The formal context has properties as objects and lower-cased name
/// tokens as attributes. A formal concept whose intent is a full token set
/// groups all properties sharing exactly those tokens; cross-source
/// members of one concept's extent are matched. With
/// `allow_subset_intents`, sub-concepts (token-set containment) also
/// match, mirroring FCA-Map's partially-shared lexicon concepts.
/// Extremely precise, recall limited to lexically identical/nested names.
class FcaMapMatcher final : public PairMatcher {
 public:
  explicit FcaMapMatcher(FcaMapOptions options = {}) : options_(options) {}

  std::string Name() const override { return "FCA-Map"; }
  Status Fit(const data::Dataset& dataset,
             const std::vector<data::LabeledPair>& training_pairs) override;
  StatusOr<std::vector<int32_t>> ClassifyPairs(
      const std::vector<data::PropertyPair>& pairs) override;

 private:
  FcaMapOptions options_;
  std::vector<std::vector<std::string>> token_sets_;  // sorted unique tokens
  bool fitted_ = false;
};

}  // namespace leapme::baselines

#endif  // LEAPME_BASELINES_FCA_MAP_H_
