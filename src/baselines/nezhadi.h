#ifndef LEAPME_BASELINES_NEZHADI_H_
#define LEAPME_BASELINES_NEZHADI_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "baselines/pair_matcher.h"
#include "ml/classifier.h"

namespace leapme::baselines {

/// Learner choices for the Nezhadi baseline.
enum class NezhadiLearner : int {
  kAdaBoost = 0,       ///< boosted stumps (their best performer)
  kDecisionTree = 1,
  kLogisticRegression = 2,
};

/// Options for NezhadiMatcher.
struct NezhadiOptions {
  NezhadiLearner learner = NezhadiLearner::kAdaBoost;
  double decision_threshold = 0.5;
};

/// Supervised baseline after Nezhadi et al. [22]: ontology alignment via a
/// classic ML classifier over multiple *string* similarity measures of the
/// element names. Unlike LEAPME it uses neither word embeddings nor
/// instance values — its feature vector is the name-similarity block only
/// (token overlap, edit distances, q-gram profile distances,
/// Jaro-Winkler, prefix/suffix overlap).
class NezhadiMatcher final : public PairMatcher {
 public:
  explicit NezhadiMatcher(NezhadiOptions options = {});

  std::string Name() const override { return "Nezhadi"; }
  bool IsSupervised() const override { return true; }
  Status Fit(const data::Dataset& dataset,
             const std::vector<data::LabeledPair>& training_pairs) override;
  StatusOr<std::vector<int32_t>> ClassifyPairs(
      const std::vector<data::PropertyPair>& pairs) override;
  StatusOr<std::vector<double>> ScorePairs(
      const std::vector<data::PropertyPair>& pairs) override;

  /// Number of features per pair.
  static constexpr size_t kFeatureCount = 10;

  /// Fills `out` (size kFeatureCount) with the pair's similarity features.
  static void PairFeatures(const std::string& a, const std::string& b,
                           std::span<float> out);

 private:
  nn::Matrix BuildDesign(const std::vector<data::PropertyPair>& pairs) const;

  NezhadiOptions options_;
  std::unique_ptr<ml::BinaryClassifier> classifier_;
  std::vector<std::string> names_;
  bool fitted_ = false;
};

}  // namespace leapme::baselines

#endif  // LEAPME_BASELINES_NEZHADI_H_
