#ifndef LEAPME_GRAPH_SIMILARITY_GRAPH_H_
#define LEAPME_GRAPH_SIMILARITY_GRAPH_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"

namespace leapme::graph {

/// One scored correspondence between two properties.
struct SimilarityEdge {
  data::PropertyId a = 0;
  data::PropertyId b = 0;
  double score = 0.0;  ///< classifier similarity in [0, 1]
};

/// The output of LEAPME (Algorithm 1): property pairs with similarity
/// scores, forming a similarity graph over the properties of all sources.
/// This graph is the input of the clustering post-processing step the
/// paper describes as future work (§VI).
class SimilarityGraph {
 public:
  /// `num_properties` fixes the node id space [0, num_properties).
  explicit SimilarityGraph(size_t num_properties = 0)
      : num_properties_(num_properties) {}

  size_t num_properties() const { return num_properties_; }
  void set_num_properties(size_t n) { num_properties_ = n; }

  void AddEdge(data::PropertyId a, data::PropertyId b, double score);

  const std::vector<SimilarityEdge>& edges() const { return edges_; }
  size_t edge_count() const { return edges_.size(); }

  /// Edges with score >= threshold.
  std::vector<SimilarityEdge> EdgesAbove(double threshold) const;

 private:
  size_t num_properties_;
  std::vector<SimilarityEdge> edges_;
};

/// Clusters as lists of property ids; singletons included for isolated
/// properties.
using Clusters = std::vector<std::vector<data::PropertyId>>;

/// Connected components of the graph restricted to edges with
/// score >= threshold — the simplest way to derive clusters of equivalent
/// properties from the match result.
Clusters ConnectedComponentClusters(const SimilarityGraph& graph,
                                    double threshold);

/// Star clustering: repeatedly pick the unassigned node with the highest
/// summed edge weight as a cluster center and attach its unassigned
/// neighbors (score >= threshold). More robust than connected components
/// against single spurious bridge edges.
Clusters StarClusters(const SimilarityGraph& graph, double threshold);

/// Pair-level quality of a clustering against the dataset's ground truth:
/// a predicted pair is any same-cluster cross-source property pair; an
/// actual pair is any ground-truth match.
struct ClusterQuality {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t cluster_count = 0;
  size_t non_singleton_clusters = 0;
};

ClusterQuality EvaluateClusters(const Clusters& clusters,
                                const data::Dataset& dataset);

}  // namespace leapme::graph

#endif  // LEAPME_GRAPH_SIMILARITY_GRAPH_H_
