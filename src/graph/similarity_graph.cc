#include "graph/similarity_graph.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace leapme::graph {

namespace {

/// Union-find over property ids.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n), rank_(n, 0) {
    std::iota(parent_.begin(), parent_.end(), size_t{0});
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
  }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> rank_;
};

}  // namespace

void SimilarityGraph::AddEdge(data::PropertyId a, data::PropertyId b,
                              double score) {
  LEAPME_CHECK_LT(a, num_properties_);
  LEAPME_CHECK_LT(b, num_properties_);
  LEAPME_CHECK_NE(a, b);
  edges_.push_back(SimilarityEdge{a, b, score});
}

std::vector<SimilarityEdge> SimilarityGraph::EdgesAbove(
    double threshold) const {
  std::vector<SimilarityEdge> result;
  for (const SimilarityEdge& edge : edges_) {
    if (edge.score >= threshold) {
      result.push_back(edge);
    }
  }
  return result;
}

Clusters ConnectedComponentClusters(const SimilarityGraph& graph,
                                    double threshold) {
  const size_t n = graph.num_properties();
  DisjointSets sets(n);
  for (const SimilarityEdge& edge : graph.edges()) {
    if (edge.score >= threshold) {
      sets.Union(edge.a, edge.b);
    }
  }
  std::vector<std::vector<data::PropertyId>> by_root(n);
  for (size_t i = 0; i < n; ++i) {
    by_root[sets.Find(i)].push_back(static_cast<data::PropertyId>(i));
  }
  Clusters clusters;
  for (auto& members : by_root) {
    if (!members.empty()) {
      clusters.push_back(std::move(members));
    }
  }
  return clusters;
}

Clusters StarClusters(const SimilarityGraph& graph, double threshold) {
  const size_t n = graph.num_properties();
  // Adjacency restricted to edges above threshold.
  std::vector<std::vector<std::pair<size_t, double>>> adjacency(n);
  std::vector<double> weight(n, 0.0);
  for (const SimilarityEdge& edge : graph.edges()) {
    if (edge.score < threshold) continue;
    adjacency[edge.a].emplace_back(edge.b, edge.score);
    adjacency[edge.b].emplace_back(edge.a, edge.score);
    weight[edge.a] += edge.score;
    weight[edge.b] += edge.score;
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (weight[a] != weight[b]) return weight[a] > weight[b];
    return a < b;  // deterministic tie-break
  });

  std::vector<bool> assigned(n, false);
  Clusters clusters;
  for (size_t center : order) {
    if (assigned[center]) continue;
    assigned[center] = true;
    std::vector<data::PropertyId> cluster{
        static_cast<data::PropertyId>(center)};
    for (const auto& [neighbor, score] : adjacency[center]) {
      (void)score;
      if (!assigned[neighbor]) {
        assigned[neighbor] = true;
        cluster.push_back(static_cast<data::PropertyId>(neighbor));
      }
    }
    clusters.push_back(std::move(cluster));
  }
  return clusters;
}

ClusterQuality EvaluateClusters(const Clusters& clusters,
                                const data::Dataset& dataset) {
  ClusterQuality quality;
  quality.cluster_count = clusters.size();

  size_t predicted = 0;
  size_t correct = 0;
  for (const auto& cluster : clusters) {
    if (cluster.size() > 1) {
      ++quality.non_singleton_clusters;
    }
    for (size_t i = 0; i < cluster.size(); ++i) {
      for (size_t j = i + 1; j < cluster.size(); ++j) {
        const auto& pa = dataset.property(cluster[i]);
        const auto& pb = dataset.property(cluster[j]);
        if (pa.source == pb.source) continue;  // same-source pairs don't count
        ++predicted;
        if (dataset.IsMatch(cluster[i], cluster[j])) {
          ++correct;
        }
      }
    }
  }
  size_t actual = dataset.CountMatchingPairs();
  if (predicted > 0) {
    quality.precision =
        static_cast<double>(correct) / static_cast<double>(predicted);
  }
  if (actual > 0) {
    quality.recall =
        static_cast<double>(correct) / static_cast<double>(actual);
  }
  if (quality.precision + quality.recall > 0.0) {
    quality.f1 = 2.0 * quality.precision * quality.recall /
                 (quality.precision + quality.recall);
  }
  return quality;
}

}  // namespace leapme::graph
