# Empty compiler generated dependencies file for transfer_bench.
# This may be replaced when dependencies are built.
