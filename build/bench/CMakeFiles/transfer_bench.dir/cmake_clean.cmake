file(REMOVE_RECURSE
  "CMakeFiles/transfer_bench.dir/transfer_bench.cc.o"
  "CMakeFiles/transfer_bench.dir/transfer_bench.cc.o.d"
  "transfer_bench"
  "transfer_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
