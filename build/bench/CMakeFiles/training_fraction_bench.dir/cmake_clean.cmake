file(REMOVE_RECURSE
  "CMakeFiles/training_fraction_bench.dir/training_fraction_bench.cc.o"
  "CMakeFiles/training_fraction_bench.dir/training_fraction_bench.cc.o.d"
  "training_fraction_bench"
  "training_fraction_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_fraction_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
