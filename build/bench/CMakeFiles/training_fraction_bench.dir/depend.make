# Empty dependencies file for training_fraction_bench.
# This may be replaced when dependencies are built.
