# Empty dependencies file for clustering_bench.
# This may be replaced when dependencies are built.
