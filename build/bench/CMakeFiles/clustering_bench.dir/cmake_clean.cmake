file(REMOVE_RECURSE
  "CMakeFiles/clustering_bench.dir/clustering_bench.cc.o"
  "CMakeFiles/clustering_bench.dir/clustering_bench.cc.o.d"
  "clustering_bench"
  "clustering_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustering_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
