file(REMOVE_RECURSE
  "CMakeFiles/feature_ablation_bench.dir/feature_ablation_bench.cc.o"
  "CMakeFiles/feature_ablation_bench.dir/feature_ablation_bench.cc.o.d"
  "feature_ablation_bench"
  "feature_ablation_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_ablation_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
