# Empty compiler generated dependencies file for feature_ablation_bench.
# This may be replaced when dependencies are built.
