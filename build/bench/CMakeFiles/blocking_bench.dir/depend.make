# Empty dependencies file for blocking_bench.
# This may be replaced when dependencies are built.
