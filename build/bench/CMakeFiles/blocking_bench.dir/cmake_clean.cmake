file(REMOVE_RECURSE
  "CMakeFiles/blocking_bench.dir/blocking_bench.cc.o"
  "CMakeFiles/blocking_bench.dir/blocking_bench.cc.o.d"
  "blocking_bench"
  "blocking_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
