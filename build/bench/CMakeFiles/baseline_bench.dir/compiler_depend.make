# Empty compiler generated dependencies file for baseline_bench.
# This may be replaced when dependencies are built.
