file(REMOVE_RECURSE
  "CMakeFiles/baseline_bench.dir/baseline_bench.cc.o"
  "CMakeFiles/baseline_bench.dir/baseline_bench.cc.o.d"
  "baseline_bench"
  "baseline_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
