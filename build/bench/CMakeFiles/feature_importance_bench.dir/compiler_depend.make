# Empty compiler generated dependencies file for feature_importance_bench.
# This may be replaced when dependencies are built.
