file(REMOVE_RECURSE
  "CMakeFiles/feature_importance_bench.dir/feature_importance_bench.cc.o"
  "CMakeFiles/feature_importance_bench.dir/feature_importance_bench.cc.o.d"
  "feature_importance_bench"
  "feature_importance_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_importance_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
