file(REMOVE_RECURSE
  "libleapme_ml.a"
)
