# Empty dependencies file for leapme_ml.
# This may be replaced when dependencies are built.
