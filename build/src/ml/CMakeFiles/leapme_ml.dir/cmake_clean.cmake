file(REMOVE_RECURSE
  "CMakeFiles/leapme_ml.dir/adaboost.cc.o"
  "CMakeFiles/leapme_ml.dir/adaboost.cc.o.d"
  "CMakeFiles/leapme_ml.dir/classifier.cc.o"
  "CMakeFiles/leapme_ml.dir/classifier.cc.o.d"
  "CMakeFiles/leapme_ml.dir/decision_tree.cc.o"
  "CMakeFiles/leapme_ml.dir/decision_tree.cc.o.d"
  "CMakeFiles/leapme_ml.dir/logistic_regression.cc.o"
  "CMakeFiles/leapme_ml.dir/logistic_regression.cc.o.d"
  "CMakeFiles/leapme_ml.dir/metrics.cc.o"
  "CMakeFiles/leapme_ml.dir/metrics.cc.o.d"
  "CMakeFiles/leapme_ml.dir/scaler.cc.o"
  "CMakeFiles/leapme_ml.dir/scaler.cc.o.d"
  "libleapme_ml.a"
  "libleapme_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leapme_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
