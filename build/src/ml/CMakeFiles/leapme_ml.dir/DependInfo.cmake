
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/adaboost.cc" "src/ml/CMakeFiles/leapme_ml.dir/adaboost.cc.o" "gcc" "src/ml/CMakeFiles/leapme_ml.dir/adaboost.cc.o.d"
  "/root/repo/src/ml/classifier.cc" "src/ml/CMakeFiles/leapme_ml.dir/classifier.cc.o" "gcc" "src/ml/CMakeFiles/leapme_ml.dir/classifier.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/ml/CMakeFiles/leapme_ml.dir/decision_tree.cc.o" "gcc" "src/ml/CMakeFiles/leapme_ml.dir/decision_tree.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/ml/CMakeFiles/leapme_ml.dir/logistic_regression.cc.o" "gcc" "src/ml/CMakeFiles/leapme_ml.dir/logistic_regression.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/leapme_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/leapme_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/scaler.cc" "src/ml/CMakeFiles/leapme_ml.dir/scaler.cc.o" "gcc" "src/ml/CMakeFiles/leapme_ml.dir/scaler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/leapme_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/leapme_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
