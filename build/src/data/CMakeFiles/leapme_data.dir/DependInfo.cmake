
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/leapme_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/leapme_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/domain.cc" "src/data/CMakeFiles/leapme_data.dir/domain.cc.o" "gcc" "src/data/CMakeFiles/leapme_data.dir/domain.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/data/CMakeFiles/leapme_data.dir/generator.cc.o" "gcc" "src/data/CMakeFiles/leapme_data.dir/generator.cc.o.d"
  "/root/repo/src/data/splitting.cc" "src/data/CMakeFiles/leapme_data.dir/splitting.cc.o" "gcc" "src/data/CMakeFiles/leapme_data.dir/splitting.cc.o.d"
  "/root/repo/src/data/statistics.cc" "src/data/CMakeFiles/leapme_data.dir/statistics.cc.o" "gcc" "src/data/CMakeFiles/leapme_data.dir/statistics.cc.o.d"
  "/root/repo/src/data/tsv_io.cc" "src/data/CMakeFiles/leapme_data.dir/tsv_io.cc.o" "gcc" "src/data/CMakeFiles/leapme_data.dir/tsv_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/leapme_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/leapme_text.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/leapme_embedding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
