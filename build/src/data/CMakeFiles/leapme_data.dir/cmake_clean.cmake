file(REMOVE_RECURSE
  "CMakeFiles/leapme_data.dir/dataset.cc.o"
  "CMakeFiles/leapme_data.dir/dataset.cc.o.d"
  "CMakeFiles/leapme_data.dir/domain.cc.o"
  "CMakeFiles/leapme_data.dir/domain.cc.o.d"
  "CMakeFiles/leapme_data.dir/generator.cc.o"
  "CMakeFiles/leapme_data.dir/generator.cc.o.d"
  "CMakeFiles/leapme_data.dir/splitting.cc.o"
  "CMakeFiles/leapme_data.dir/splitting.cc.o.d"
  "CMakeFiles/leapme_data.dir/statistics.cc.o"
  "CMakeFiles/leapme_data.dir/statistics.cc.o.d"
  "CMakeFiles/leapme_data.dir/tsv_io.cc.o"
  "CMakeFiles/leapme_data.dir/tsv_io.cc.o.d"
  "libleapme_data.a"
  "libleapme_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leapme_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
