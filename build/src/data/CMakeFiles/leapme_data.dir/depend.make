# Empty dependencies file for leapme_data.
# This may be replaced when dependencies are built.
