file(REMOVE_RECURSE
  "libleapme_data.a"
)
