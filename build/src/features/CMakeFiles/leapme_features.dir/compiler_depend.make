# Empty compiler generated dependencies file for leapme_features.
# This may be replaced when dependencies are built.
