
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/feature_pipeline.cc" "src/features/CMakeFiles/leapme_features.dir/feature_pipeline.cc.o" "gcc" "src/features/CMakeFiles/leapme_features.dir/feature_pipeline.cc.o.d"
  "/root/repo/src/features/feature_schema.cc" "src/features/CMakeFiles/leapme_features.dir/feature_schema.cc.o" "gcc" "src/features/CMakeFiles/leapme_features.dir/feature_schema.cc.o.d"
  "/root/repo/src/features/instance_features.cc" "src/features/CMakeFiles/leapme_features.dir/instance_features.cc.o" "gcc" "src/features/CMakeFiles/leapme_features.dir/instance_features.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/leapme_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/leapme_text.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/leapme_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/leapme_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
