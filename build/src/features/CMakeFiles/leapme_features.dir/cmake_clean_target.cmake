file(REMOVE_RECURSE
  "libleapme_features.a"
)
