file(REMOVE_RECURSE
  "CMakeFiles/leapme_features.dir/feature_pipeline.cc.o"
  "CMakeFiles/leapme_features.dir/feature_pipeline.cc.o.d"
  "CMakeFiles/leapme_features.dir/feature_schema.cc.o"
  "CMakeFiles/leapme_features.dir/feature_schema.cc.o.d"
  "CMakeFiles/leapme_features.dir/instance_features.cc.o"
  "CMakeFiles/leapme_features.dir/instance_features.cc.o.d"
  "libleapme_features.a"
  "libleapme_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leapme_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
