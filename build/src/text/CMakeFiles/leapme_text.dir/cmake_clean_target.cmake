file(REMOVE_RECURSE
  "libleapme_text.a"
)
