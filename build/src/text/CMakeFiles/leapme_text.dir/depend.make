# Empty dependencies file for leapme_text.
# This may be replaced when dependencies are built.
