file(REMOVE_RECURSE
  "CMakeFiles/leapme_text.dir/char_class.cc.o"
  "CMakeFiles/leapme_text.dir/char_class.cc.o.d"
  "CMakeFiles/leapme_text.dir/ngram.cc.o"
  "CMakeFiles/leapme_text.dir/ngram.cc.o.d"
  "CMakeFiles/leapme_text.dir/string_metrics.cc.o"
  "CMakeFiles/leapme_text.dir/string_metrics.cc.o.d"
  "CMakeFiles/leapme_text.dir/tokenizer.cc.o"
  "CMakeFiles/leapme_text.dir/tokenizer.cc.o.d"
  "libleapme_text.a"
  "libleapme_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leapme_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
