
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/char_class.cc" "src/text/CMakeFiles/leapme_text.dir/char_class.cc.o" "gcc" "src/text/CMakeFiles/leapme_text.dir/char_class.cc.o.d"
  "/root/repo/src/text/ngram.cc" "src/text/CMakeFiles/leapme_text.dir/ngram.cc.o" "gcc" "src/text/CMakeFiles/leapme_text.dir/ngram.cc.o.d"
  "/root/repo/src/text/string_metrics.cc" "src/text/CMakeFiles/leapme_text.dir/string_metrics.cc.o" "gcc" "src/text/CMakeFiles/leapme_text.dir/string_metrics.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/leapme_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/leapme_text.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/leapme_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
