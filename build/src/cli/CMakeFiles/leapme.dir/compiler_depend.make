# Empty compiler generated dependencies file for leapme.
# This may be replaced when dependencies are built.
