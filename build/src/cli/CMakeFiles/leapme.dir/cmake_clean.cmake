file(REMOVE_RECURSE
  "CMakeFiles/leapme.dir/main.cc.o"
  "CMakeFiles/leapme.dir/main.cc.o.d"
  "leapme"
  "leapme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leapme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
