file(REMOVE_RECURSE
  "CMakeFiles/leapme_cli.dir/commands.cc.o"
  "CMakeFiles/leapme_cli.dir/commands.cc.o.d"
  "CMakeFiles/leapme_cli.dir/flags.cc.o"
  "CMakeFiles/leapme_cli.dir/flags.cc.o.d"
  "libleapme_cli.a"
  "libleapme_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leapme_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
