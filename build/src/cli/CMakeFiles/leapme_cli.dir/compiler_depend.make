# Empty compiler generated dependencies file for leapme_cli.
# This may be replaced when dependencies are built.
