file(REMOVE_RECURSE
  "libleapme_cli.a"
)
