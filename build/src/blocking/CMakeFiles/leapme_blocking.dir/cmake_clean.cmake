file(REMOVE_RECURSE
  "CMakeFiles/leapme_blocking.dir/blocker.cc.o"
  "CMakeFiles/leapme_blocking.dir/blocker.cc.o.d"
  "libleapme_blocking.a"
  "libleapme_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leapme_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
