# Empty dependencies file for leapme_blocking.
# This may be replaced when dependencies are built.
