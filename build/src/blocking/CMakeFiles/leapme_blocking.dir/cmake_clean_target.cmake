file(REMOVE_RECURSE
  "libleapme_blocking.a"
)
