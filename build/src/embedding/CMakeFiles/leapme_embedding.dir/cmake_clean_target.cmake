file(REMOVE_RECURSE
  "libleapme_embedding.a"
)
