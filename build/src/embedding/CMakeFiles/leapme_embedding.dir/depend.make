# Empty dependencies file for leapme_embedding.
# This may be replaced when dependencies are built.
