
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embedding/embedding_model.cc" "src/embedding/CMakeFiles/leapme_embedding.dir/embedding_model.cc.o" "gcc" "src/embedding/CMakeFiles/leapme_embedding.dir/embedding_model.cc.o.d"
  "/root/repo/src/embedding/synthetic_model.cc" "src/embedding/CMakeFiles/leapme_embedding.dir/synthetic_model.cc.o" "gcc" "src/embedding/CMakeFiles/leapme_embedding.dir/synthetic_model.cc.o.d"
  "/root/repo/src/embedding/text_embedding_file.cc" "src/embedding/CMakeFiles/leapme_embedding.dir/text_embedding_file.cc.o" "gcc" "src/embedding/CMakeFiles/leapme_embedding.dir/text_embedding_file.cc.o.d"
  "/root/repo/src/embedding/vector_ops.cc" "src/embedding/CMakeFiles/leapme_embedding.dir/vector_ops.cc.o" "gcc" "src/embedding/CMakeFiles/leapme_embedding.dir/vector_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/leapme_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
