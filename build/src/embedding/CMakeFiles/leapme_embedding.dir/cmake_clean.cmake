file(REMOVE_RECURSE
  "CMakeFiles/leapme_embedding.dir/embedding_model.cc.o"
  "CMakeFiles/leapme_embedding.dir/embedding_model.cc.o.d"
  "CMakeFiles/leapme_embedding.dir/synthetic_model.cc.o"
  "CMakeFiles/leapme_embedding.dir/synthetic_model.cc.o.d"
  "CMakeFiles/leapme_embedding.dir/text_embedding_file.cc.o"
  "CMakeFiles/leapme_embedding.dir/text_embedding_file.cc.o.d"
  "CMakeFiles/leapme_embedding.dir/vector_ops.cc.o"
  "CMakeFiles/leapme_embedding.dir/vector_ops.cc.o.d"
  "libleapme_embedding.a"
  "libleapme_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leapme_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
