file(REMOVE_RECURSE
  "CMakeFiles/leapme_core.dir/leapme.cc.o"
  "CMakeFiles/leapme_core.dir/leapme.cc.o.d"
  "libleapme_core.a"
  "libleapme_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leapme_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
