# Empty compiler generated dependencies file for leapme_core.
# This may be replaced when dependencies are built.
