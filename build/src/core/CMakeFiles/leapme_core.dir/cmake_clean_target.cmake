file(REMOVE_RECURSE
  "libleapme_core.a"
)
