file(REMOVE_RECURSE
  "CMakeFiles/leapme_common.dir/logging.cc.o"
  "CMakeFiles/leapme_common.dir/logging.cc.o.d"
  "CMakeFiles/leapme_common.dir/rng.cc.o"
  "CMakeFiles/leapme_common.dir/rng.cc.o.d"
  "CMakeFiles/leapme_common.dir/status.cc.o"
  "CMakeFiles/leapme_common.dir/status.cc.o.d"
  "CMakeFiles/leapme_common.dir/string_util.cc.o"
  "CMakeFiles/leapme_common.dir/string_util.cc.o.d"
  "libleapme_common.a"
  "libleapme_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leapme_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
