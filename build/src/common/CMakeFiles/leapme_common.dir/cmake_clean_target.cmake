file(REMOVE_RECURSE
  "libleapme_common.a"
)
