# Empty dependencies file for leapme_common.
# This may be replaced when dependencies are built.
