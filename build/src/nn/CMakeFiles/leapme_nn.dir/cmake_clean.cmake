file(REMOVE_RECURSE
  "CMakeFiles/leapme_nn.dir/activation.cc.o"
  "CMakeFiles/leapme_nn.dir/activation.cc.o.d"
  "CMakeFiles/leapme_nn.dir/dense_layer.cc.o"
  "CMakeFiles/leapme_nn.dir/dense_layer.cc.o.d"
  "CMakeFiles/leapme_nn.dir/loss.cc.o"
  "CMakeFiles/leapme_nn.dir/loss.cc.o.d"
  "CMakeFiles/leapme_nn.dir/matrix.cc.o"
  "CMakeFiles/leapme_nn.dir/matrix.cc.o.d"
  "CMakeFiles/leapme_nn.dir/mlp.cc.o"
  "CMakeFiles/leapme_nn.dir/mlp.cc.o.d"
  "CMakeFiles/leapme_nn.dir/optimizer.cc.o"
  "CMakeFiles/leapme_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/leapme_nn.dir/trainer.cc.o"
  "CMakeFiles/leapme_nn.dir/trainer.cc.o.d"
  "libleapme_nn.a"
  "libleapme_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leapme_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
