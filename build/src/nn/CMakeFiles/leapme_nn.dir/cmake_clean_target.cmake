file(REMOVE_RECURSE
  "libleapme_nn.a"
)
