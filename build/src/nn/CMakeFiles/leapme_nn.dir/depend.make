# Empty dependencies file for leapme_nn.
# This may be replaced when dependencies are built.
