
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cc" "src/nn/CMakeFiles/leapme_nn.dir/activation.cc.o" "gcc" "src/nn/CMakeFiles/leapme_nn.dir/activation.cc.o.d"
  "/root/repo/src/nn/dense_layer.cc" "src/nn/CMakeFiles/leapme_nn.dir/dense_layer.cc.o" "gcc" "src/nn/CMakeFiles/leapme_nn.dir/dense_layer.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/leapme_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/leapme_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/matrix.cc" "src/nn/CMakeFiles/leapme_nn.dir/matrix.cc.o" "gcc" "src/nn/CMakeFiles/leapme_nn.dir/matrix.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/nn/CMakeFiles/leapme_nn.dir/mlp.cc.o" "gcc" "src/nn/CMakeFiles/leapme_nn.dir/mlp.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/leapme_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/leapme_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/trainer.cc" "src/nn/CMakeFiles/leapme_nn.dir/trainer.cc.o" "gcc" "src/nn/CMakeFiles/leapme_nn.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/leapme_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
