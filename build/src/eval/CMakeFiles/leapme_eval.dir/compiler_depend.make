# Empty compiler generated dependencies file for leapme_eval.
# This may be replaced when dependencies are built.
