file(REMOVE_RECURSE
  "libleapme_eval.a"
)
