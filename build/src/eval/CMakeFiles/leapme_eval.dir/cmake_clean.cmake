file(REMOVE_RECURSE
  "CMakeFiles/leapme_eval.dir/experiment.cc.o"
  "CMakeFiles/leapme_eval.dir/experiment.cc.o.d"
  "CMakeFiles/leapme_eval.dir/importance.cc.o"
  "CMakeFiles/leapme_eval.dir/importance.cc.o.d"
  "CMakeFiles/leapme_eval.dir/report.cc.o"
  "CMakeFiles/leapme_eval.dir/report.cc.o.d"
  "libleapme_eval.a"
  "libleapme_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leapme_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
