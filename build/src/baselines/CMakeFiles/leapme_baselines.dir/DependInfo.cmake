
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/aml.cc" "src/baselines/CMakeFiles/leapme_baselines.dir/aml.cc.o" "gcc" "src/baselines/CMakeFiles/leapme_baselines.dir/aml.cc.o.d"
  "/root/repo/src/baselines/fca_map.cc" "src/baselines/CMakeFiles/leapme_baselines.dir/fca_map.cc.o" "gcc" "src/baselines/CMakeFiles/leapme_baselines.dir/fca_map.cc.o.d"
  "/root/repo/src/baselines/lsh.cc" "src/baselines/CMakeFiles/leapme_baselines.dir/lsh.cc.o" "gcc" "src/baselines/CMakeFiles/leapme_baselines.dir/lsh.cc.o.d"
  "/root/repo/src/baselines/nezhadi.cc" "src/baselines/CMakeFiles/leapme_baselines.dir/nezhadi.cc.o" "gcc" "src/baselines/CMakeFiles/leapme_baselines.dir/nezhadi.cc.o.d"
  "/root/repo/src/baselines/pair_matcher.cc" "src/baselines/CMakeFiles/leapme_baselines.dir/pair_matcher.cc.o" "gcc" "src/baselines/CMakeFiles/leapme_baselines.dir/pair_matcher.cc.o.d"
  "/root/repo/src/baselines/semprop.cc" "src/baselines/CMakeFiles/leapme_baselines.dir/semprop.cc.o" "gcc" "src/baselines/CMakeFiles/leapme_baselines.dir/semprop.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/leapme_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/leapme_text.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/leapme_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/leapme_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/leapme_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/leapme_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
