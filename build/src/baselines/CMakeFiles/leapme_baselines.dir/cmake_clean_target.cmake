file(REMOVE_RECURSE
  "libleapme_baselines.a"
)
