# Empty compiler generated dependencies file for leapme_baselines.
# This may be replaced when dependencies are built.
