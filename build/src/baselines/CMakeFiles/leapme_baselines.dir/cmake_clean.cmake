file(REMOVE_RECURSE
  "CMakeFiles/leapme_baselines.dir/aml.cc.o"
  "CMakeFiles/leapme_baselines.dir/aml.cc.o.d"
  "CMakeFiles/leapme_baselines.dir/fca_map.cc.o"
  "CMakeFiles/leapme_baselines.dir/fca_map.cc.o.d"
  "CMakeFiles/leapme_baselines.dir/lsh.cc.o"
  "CMakeFiles/leapme_baselines.dir/lsh.cc.o.d"
  "CMakeFiles/leapme_baselines.dir/nezhadi.cc.o"
  "CMakeFiles/leapme_baselines.dir/nezhadi.cc.o.d"
  "CMakeFiles/leapme_baselines.dir/pair_matcher.cc.o"
  "CMakeFiles/leapme_baselines.dir/pair_matcher.cc.o.d"
  "CMakeFiles/leapme_baselines.dir/semprop.cc.o"
  "CMakeFiles/leapme_baselines.dir/semprop.cc.o.d"
  "libleapme_baselines.a"
  "libleapme_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leapme_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
