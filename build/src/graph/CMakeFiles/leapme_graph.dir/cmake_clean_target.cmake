file(REMOVE_RECURSE
  "libleapme_graph.a"
)
