# Empty compiler generated dependencies file for leapme_graph.
# This may be replaced when dependencies are built.
