file(REMOVE_RECURSE
  "CMakeFiles/leapme_graph.dir/similarity_graph.cc.o"
  "CMakeFiles/leapme_graph.dir/similarity_graph.cc.o.d"
  "libleapme_graph.a"
  "libleapme_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leapme_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
