# Empty dependencies file for transfer_matching.
# This may be replaced when dependencies are built.
