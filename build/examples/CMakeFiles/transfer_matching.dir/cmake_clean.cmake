file(REMOVE_RECURSE
  "CMakeFiles/transfer_matching.dir/transfer_matching.cpp.o"
  "CMakeFiles/transfer_matching.dir/transfer_matching.cpp.o.d"
  "transfer_matching"
  "transfer_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
