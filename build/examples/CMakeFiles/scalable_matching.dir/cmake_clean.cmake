file(REMOVE_RECURSE
  "CMakeFiles/scalable_matching.dir/scalable_matching.cpp.o"
  "CMakeFiles/scalable_matching.dir/scalable_matching.cpp.o.d"
  "scalable_matching"
  "scalable_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalable_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
