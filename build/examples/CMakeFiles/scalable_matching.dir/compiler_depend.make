# Empty compiler generated dependencies file for scalable_matching.
# This may be replaced when dependencies are built.
