file(REMOVE_RECURSE
  "CMakeFiles/catalog_integration.dir/catalog_integration.cpp.o"
  "CMakeFiles/catalog_integration.dir/catalog_integration.cpp.o.d"
  "catalog_integration"
  "catalog_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
