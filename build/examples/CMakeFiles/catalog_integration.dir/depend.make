# Empty dependencies file for catalog_integration.
# This may be replaced when dependencies are built.
