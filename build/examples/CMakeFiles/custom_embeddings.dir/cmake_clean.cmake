file(REMOVE_RECURSE
  "CMakeFiles/custom_embeddings.dir/custom_embeddings.cpp.o"
  "CMakeFiles/custom_embeddings.dir/custom_embeddings.cpp.o.d"
  "custom_embeddings"
  "custom_embeddings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
