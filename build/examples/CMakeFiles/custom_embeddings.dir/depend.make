# Empty dependencies file for custom_embeddings.
# This may be replaced when dependencies are built.
