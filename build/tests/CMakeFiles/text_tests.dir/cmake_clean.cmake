file(REMOVE_RECURSE
  "CMakeFiles/text_tests.dir/text/char_class_test.cc.o"
  "CMakeFiles/text_tests.dir/text/char_class_test.cc.o.d"
  "CMakeFiles/text_tests.dir/text/ngram_test.cc.o"
  "CMakeFiles/text_tests.dir/text/ngram_test.cc.o.d"
  "CMakeFiles/text_tests.dir/text/string_metrics_exhaustive_test.cc.o"
  "CMakeFiles/text_tests.dir/text/string_metrics_exhaustive_test.cc.o.d"
  "CMakeFiles/text_tests.dir/text/string_metrics_test.cc.o"
  "CMakeFiles/text_tests.dir/text/string_metrics_test.cc.o.d"
  "CMakeFiles/text_tests.dir/text/tokenizer_test.cc.o"
  "CMakeFiles/text_tests.dir/text/tokenizer_test.cc.o.d"
  "text_tests"
  "text_tests.pdb"
  "text_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
