file(REMOVE_RECURSE
  "CMakeFiles/eval_tests.dir/eval/experiment_test.cc.o"
  "CMakeFiles/eval_tests.dir/eval/experiment_test.cc.o.d"
  "CMakeFiles/eval_tests.dir/eval/importance_test.cc.o"
  "CMakeFiles/eval_tests.dir/eval/importance_test.cc.o.d"
  "CMakeFiles/eval_tests.dir/eval/leapme_adapter_test.cc.o"
  "CMakeFiles/eval_tests.dir/eval/leapme_adapter_test.cc.o.d"
  "CMakeFiles/eval_tests.dir/eval/report_test.cc.o"
  "CMakeFiles/eval_tests.dir/eval/report_test.cc.o.d"
  "eval_tests"
  "eval_tests.pdb"
  "eval_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
