file(REMOVE_RECURSE
  "CMakeFiles/blocking_tests.dir/blocking/blocker_test.cc.o"
  "CMakeFiles/blocking_tests.dir/blocking/blocker_test.cc.o.d"
  "blocking_tests"
  "blocking_tests.pdb"
  "blocking_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocking_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
