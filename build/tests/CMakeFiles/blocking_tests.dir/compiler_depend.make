# Empty compiler generated dependencies file for blocking_tests.
# This may be replaced when dependencies are built.
