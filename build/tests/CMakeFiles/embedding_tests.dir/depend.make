# Empty dependencies file for embedding_tests.
# This may be replaced when dependencies are built.
