
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/embedding/embedding_model_test.cc" "tests/CMakeFiles/embedding_tests.dir/embedding/embedding_model_test.cc.o" "gcc" "tests/CMakeFiles/embedding_tests.dir/embedding/embedding_model_test.cc.o.d"
  "/root/repo/tests/embedding/synthetic_model_test.cc" "tests/CMakeFiles/embedding_tests.dir/embedding/synthetic_model_test.cc.o" "gcc" "tests/CMakeFiles/embedding_tests.dir/embedding/synthetic_model_test.cc.o.d"
  "/root/repo/tests/embedding/text_embedding_file_test.cc" "tests/CMakeFiles/embedding_tests.dir/embedding/text_embedding_file_test.cc.o" "gcc" "tests/CMakeFiles/embedding_tests.dir/embedding/text_embedding_file_test.cc.o.d"
  "/root/repo/tests/embedding/vector_ops_test.cc" "tests/CMakeFiles/embedding_tests.dir/embedding/vector_ops_test.cc.o" "gcc" "tests/CMakeFiles/embedding_tests.dir/embedding/vector_ops_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/leapme_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/leapme_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/leapme_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/leapme_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/leapme_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/blocking/CMakeFiles/leapme_blocking.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/leapme_data.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/leapme_features.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/leapme_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/leapme_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/leapme_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/leapme_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/leapme_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
