file(REMOVE_RECURSE
  "CMakeFiles/embedding_tests.dir/embedding/embedding_model_test.cc.o"
  "CMakeFiles/embedding_tests.dir/embedding/embedding_model_test.cc.o.d"
  "CMakeFiles/embedding_tests.dir/embedding/synthetic_model_test.cc.o"
  "CMakeFiles/embedding_tests.dir/embedding/synthetic_model_test.cc.o.d"
  "CMakeFiles/embedding_tests.dir/embedding/text_embedding_file_test.cc.o"
  "CMakeFiles/embedding_tests.dir/embedding/text_embedding_file_test.cc.o.d"
  "CMakeFiles/embedding_tests.dir/embedding/vector_ops_test.cc.o"
  "CMakeFiles/embedding_tests.dir/embedding/vector_ops_test.cc.o.d"
  "embedding_tests"
  "embedding_tests.pdb"
  "embedding_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
