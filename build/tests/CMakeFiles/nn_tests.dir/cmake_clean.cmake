file(REMOVE_RECURSE
  "CMakeFiles/nn_tests.dir/nn/activation_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/activation_test.cc.o.d"
  "CMakeFiles/nn_tests.dir/nn/dense_layer_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/dense_layer_test.cc.o.d"
  "CMakeFiles/nn_tests.dir/nn/dropout_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/dropout_test.cc.o.d"
  "CMakeFiles/nn_tests.dir/nn/loss_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/loss_test.cc.o.d"
  "CMakeFiles/nn_tests.dir/nn/matrix_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/matrix_test.cc.o.d"
  "CMakeFiles/nn_tests.dir/nn/mlp_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/mlp_test.cc.o.d"
  "CMakeFiles/nn_tests.dir/nn/optimizer_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/optimizer_test.cc.o.d"
  "CMakeFiles/nn_tests.dir/nn/trainer_test.cc.o"
  "CMakeFiles/nn_tests.dir/nn/trainer_test.cc.o.d"
  "nn_tests"
  "nn_tests.pdb"
  "nn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
