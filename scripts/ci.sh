#!/usr/bin/env bash
# CI entry point: tier-1 verification plus a ThreadSanitizer pass over
# the concurrency surface (the shared execution engine and the online
# scoring service).
#
#   scripts/ci.sh            # full run
#   SKIP_TSAN=1 scripts/ci.sh  # tier-1 only
#
# Both build trees are kept (build/, build-tsan/) so incremental reruns
# are cheap.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier 1: build + full test suite =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== tier 2: ThreadSanitizer on the parallel + serve labels =="
  cmake -B build-tsan -S . -DLEAPME_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS"
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -L 'parallel|serve'
fi

echo "ci.sh: all checks passed"
