#!/usr/bin/env bash
# CI entry point: tier-1 verification plus sanitizer passes over the
# concurrency surface (the shared execution engine and the online
# scoring service) — ThreadSanitizer for races, AddressSanitizer for
# lifetime bugs in the batcher / cache / registry hot paths, and
# UndefinedBehaviorSanitizer over the SIMD kernel layer (misaligned or
# out-of-bounds vector loads would surface here first).
#
#   scripts/ci.sh               # full run
#   SKIP_TSAN=1 scripts/ci.sh   # skip the TSan tier
#   SKIP_ASAN=1 scripts/ci.sh   # skip the ASan tier
#   SKIP_UBSAN=1 scripts/ci.sh  # skip the UBSan tier
#
# All build trees are kept (build/, build-tsan/, build-asan/,
# build-ubsan/) so incremental reruns are cheap.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier 1: build + full test suite =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"
# The kernel parity suite again with dispatch forced to the scalar path:
# together with the default run above, both tables are proven
# bit-identical on this machine (the suite itself compares the other
# path when present).
echo "== tier 1b: kernel parity with LEAPME_KERNEL=scalar =="
LEAPME_KERNEL=scalar ctest --test-dir build --output-on-failure \
  -j "$JOBS" -L kernels

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== tier 2: ThreadSanitizer on the parallel + serve labels =="
  cmake -B build-tsan -S . -DLEAPME_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS"
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -L 'parallel|serve'
fi

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  echo "== tier 3: AddressSanitizer on the parallel + serve labels =="
  cmake -B build-asan -S . -DLEAPME_SANITIZE=address
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -L 'parallel|serve'
fi

if [[ "${SKIP_UBSAN:-0}" != "1" ]]; then
  echo "== tier 4: UndefinedBehaviorSanitizer on the kernels label =="
  cmake -B build-ubsan -S . -DLEAPME_SANITIZE=undefined
  cmake --build build-ubsan -j "$JOBS"
  ctest --test-dir build-ubsan --output-on-failure -j "$JOBS" -L kernels
  LEAPME_KERNEL=scalar ctest --test-dir build-ubsan --output-on-failure \
    -j "$JOBS" -L kernels
fi

echo "ci.sh: all checks passed"
