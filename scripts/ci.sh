#!/usr/bin/env bash
# CI entry point: tier-1 verification plus sanitizer passes over the
# concurrency surface (the shared execution engine and the online
# scoring service) — ThreadSanitizer for races, AddressSanitizer for
# lifetime bugs in the batcher / cache / registry hot paths, and
# UndefinedBehaviorSanitizer over the SIMD kernel layer (misaligned or
# out-of-bounds vector loads would surface here first).
#
#   scripts/ci.sh               # full run
#   SKIP_CHAOS=1 scripts/ci.sh  # skip the fault-injection tier
#   SKIP_TSAN=1 scripts/ci.sh   # skip the TSan tier
#   SKIP_ASAN=1 scripts/ci.sh   # skip the ASan tier
#   SKIP_UBSAN=1 scripts/ci.sh  # skip the UBSan tier
#
# All build trees are kept (build/, build-tsan/, build-asan/,
# build-ubsan/) so incremental reruns are cheap.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

echo "== tier 1: build + full test suite =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"
# The kernel parity suite again with dispatch forced to the scalar path:
# together with the default run above, both tables are proven
# bit-identical on this machine (the suite itself compares the other
# path when present).
echo "== tier 1b: kernel parity with LEAPME_KERNEL=scalar =="
LEAPME_KERNEL=scalar ctest --test-dir build --output-on-failure \
  -j "$JOBS" -L kernels

# The blocking suite again at pinned thread counts: candidate generation
# promises identical (sorted, deduplicated) pair lists at any pool
# width, so run the label single-threaded and wide and let the
# determinism assertions compare against the spec.
echo "== tier 1e: blocking determinism at 1 and 4 threads =="
LEAPME_THREADS=1 ctest --test-dir build --output-on-failure \
  -j "$JOBS" -L blocking
LEAPME_THREADS=4 ctest --test-dir build --output-on-failure \
  -j "$JOBS" -L blocking

# Open-loop smoke soak: a short fixed-RPS Zipf run against the serve
# stack in catalog-index mode (LEAPME_SCALE=test keeps it to ~2s). The
# check asserts the report parses and the outcome mix is healthy — an
# unloaded test-scale server must answer nearly everything it is
# offered, and transport errors mean a protocol regression, not load.
echo "== tier 1f: open-loop smoke soak via soak_bench =="
SMOKE_DIR="$(mktemp -d)"
LEAPME_SCALE=test LEAPME_BENCH_DIR="$SMOKE_DIR" build/bench/soak_bench \
  > "$SMOKE_DIR/soak.stdout"
python3 - "$SMOKE_DIR/BENCH_soak.json" <<'PYEOF'
import json, sys
report = json.load(open(sys.argv[1]))
metrics = report["metrics"]
sent = metrics["sent"]
answered = metrics["ok"] + metrics["degraded"]
assert sent > 0, "soak sent nothing"
assert metrics["errors"] <= max(2, sent // 50), f"errors: {metrics['errors']}/{sent}"
assert metrics["shed"] + metrics["deadline"] <= sent // 5, \
    f"shed+deadline: {metrics['shed']}+{metrics['deadline']}/{sent}"
assert answered >= (4 * sent) // 5, f"answered only {answered}/{sent}"
assert metrics["intended"]["p99_us"] >= metrics["service"]["p99_us"], \
    "intended clock below service clock"
print(f"soak ok: {answered}/{sent} answered, "
      f"intended p99 {metrics['intended']['p99_us']:.0f}us")
PYEOF
rm -rf "$SMOKE_DIR"

# The full run above covered the epoll reactor at its default single
# loop; re-run the serve + chaos labels with the reactor pinned
# explicitly at a multi-loop width so the selection plumbing itself is
# exercised. (The legacy thread-per-connection backend is retired — the
# flag parser's rejection of it is a unit test, not a CI tier.)
echo "== tier 1g: serve + chaos labels on a multi-loop reactor =="
LEAPME_IO_BACKEND=epoll LEAPME_EVENT_LOOP_THREADS=2 \
  ctest --test-dir build --output-on-failure -j "$JOBS" -L 'serve|chaos'

# The sharded cache suite at pinned widths: single-threaded it must be a
# drop-in LRU-alike (the equivalence tests compare against a reference),
# and at 8 stress threads the per-shard locking and CLOCK eviction carry
# the concurrency. A third run forces the scalar tag-probe kernel so the
# SIMD bucket probe is proven bit-identical through the cache itself,
# not just the kernel parity suite.
echo "== tier 1i: cache suite at 1 and 8 threads + scalar tag probe =="
LEAPME_CACHE_THREADS=1 ctest --test-dir build --output-on-failure \
  -j "$JOBS" -L cache
LEAPME_CACHE_THREADS=8 ctest --test-dir build --output-on-failure \
  -j "$JOBS" -L cache
LEAPME_KERNEL=scalar ctest --test-dir build --output-on-failure \
  -j "$JOBS" -L cache

# serve_bench's idle-fleet phase end to end (LEAPME_SCALE=test keeps the
# fleet small and the open-loop runs short): the report must carry the
# reactor gauges and the idle-fleet intended-clock latency, or dashboards
# tracking them silently go blank.
echo "== tier 1h: serve_bench idle-fleet phase + reactor gauge fields =="
SERVE_DIR="$(mktemp -d)"
LEAPME_SCALE=test LEAPME_BENCH_DIR="$SERVE_DIR" build/bench/serve_bench \
  > "$SERVE_DIR/serve.stdout"
python3 - "$SERVE_DIR/BENCH_serve.json" <<'PYEOF'
import json, sys
metrics = json.load(open(sys.argv[1]))["metrics"]
for field in ("io_backend", "event_loop_threads", "epoll_wakeups",
              "writable_backlog_bytes", "connections_active",
              "idle_fleet_connections", "idle_fleet_target",
              "idle_fleet_service", "idle_fleet_intended",
              "embedding_cache_hits", "embedding_cache_misses",
              "embedding_cache_evictions", "embedding_cache_max_probe",
              "property_cache_hits", "property_cache_misses",
              "property_cache_evictions", "property_cache_max_probe",
              "cache_shards"):
    assert field in metrics, f"BENCH_serve.json missing {field}"
assert metrics["io_backend"] == "epoll", metrics["io_backend"]
assert metrics["event_loop_threads"] >= 1, metrics["event_loop_threads"]
assert metrics["cache_shards"] >= 1, metrics["cache_shards"]
assert metrics["property_cache_hits"] + metrics["property_cache_misses"] > 0, \
    "serve bench never touched the property cache"
assert metrics["idle_fleet_connections"] > 0, "idle fleet never connected"
assert metrics["idle_fleet_intended"]["latency_p99_us"] > 0, \
    "no intended-clock latency recorded under the idle fleet"
print(f"serve bench ok: {metrics['idle_fleet_connections']} idle conns, "
      f"idle-fleet intended p99 "
      f"{metrics['idle_fleet_intended']['latency_p99_us']:.0f}us")
PYEOF
rm -rf "$SERVE_DIR"

if [[ "${SKIP_CHAOS:-0}" != "1" ]]; then
  # Latency-only faults keep every serve assertion deterministic (scores
  # and framing are unchanged, just slower) while still jittering the
  # poll/deadline/batching timing paths. Error-kind faults live in the
  # chaos-labeled tests (which arm programmatically) and in the soak
  # below, where the client is allowed to retry.
  echo "== tier 1c: serve suite under an injected latency mix =="
  LEAPME_FAULTS="seed=7;serve.read:delay:p=0.05:ms=2;\
serve.write:delay:p=0.05:ms=2;embedding.lookup:delay:p=0.05:ms=1" \
    ctest --test-dir build --output-on-failure -j "$JOBS" -L serve

  # Fault-storm soak: a real `leapme serve` process armed with a
  # low-probability latency + error + short-I/O mix, driven by the
  # retrying serve_client. Passes iff every request resolves to a scored,
  # degraded, or typed-error reply — no hangs, drops, or mismatches.
  echo "== tier 1d: fault-storm soak via serve_client =="
  SOAK_DIR="$(mktemp -d)"
  SOAK_LOG="$SOAK_DIR/serve.log"
  build/src/cli/leapme generate --domain tvs --sources 4 --entities 8 \
    --seed 7 --out "$SOAK_DIR/soak.tsv"
  build/src/cli/leapme evaluate --data "$SOAK_DIR/soak.tsv" --domain tvs \
    --emb-dim 32 --seed 7 --model-out "$SOAK_DIR/soak.model" >/dev/null
  LEAPME_FAULTS="seed=42;serve.read:delay:p=0.05:ms=5;\
serve.write:delay:p=0.05:ms=5;serve.read:short:p=0.1:bytes=64;\
serve.write:short:p=0.1:bytes=128;serve.read:error:p=0.005;\
embedding.lookup:error:p=0.05;alloc:error:p=0.02" \
    build/src/cli/leapme serve --model "$SOAK_DIR/soak.model" --port 0 \
    --domain tvs --emb-dim 32 --seed 7 --deadline-ms 2000 \
    --max-queue 512 2>"$SOAK_LOG" &
  SOAK_PID=$!
  trap 'kill "$SOAK_PID" 2>/dev/null || true' EXIT
  SOAK_PORT=""
  for _ in $(seq 1 100); do
    SOAK_PORT="$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' \
      "$SOAK_LOG" | head -n 1)"
    [[ -n "$SOAK_PORT" ]] && break
    sleep 0.1
  done
  [[ -n "$SOAK_PORT" ]] || { echo "soak server never came up"; cat "$SOAK_LOG"; exit 1; }
  build/bench/serve_client --port "$SOAK_PORT" --clients 8 --requests 40 \
    --pairs 8 --domain tvs --emb-dim 32 --seed 7 \
    --model "$SOAK_DIR/soak.model" --data "$SOAK_DIR/soak.tsv" \
    --retry-budget 8
  kill "$SOAK_PID" 2>/dev/null || true
  wait "$SOAK_PID" 2>/dev/null || true
  trap - EXIT
  rm -rf "$SOAK_DIR"

  # Hot-reload chaos: a live server under a model.load/model.save fault
  # storm while serve_client fires `reload` ops every 50ms and drives
  # full scoring traffic checked bit-exact against the offline model
  # (every admitted reload serves the same file, so scores must never
  # move). Passes iff the client exits clean — zero malformed replies,
  # zero mismatches, zero unresolved requests — and the server counted
  # both rejected and successful reloads: faulted candidates never
  # touched serving, and the reload path still worked between faults.
  echo "== tier 1j: hot-reload chaos via serve_client --reload-interval-ms =="
  RELOAD_DIR="$(mktemp -d)"
  RELOAD_LOG="$RELOAD_DIR/serve.log"
  build/src/cli/leapme generate --domain tvs --sources 4 --entities 8 \
    --seed 7 --out "$RELOAD_DIR/reload.tsv"
  build/src/cli/leapme evaluate --data "$RELOAD_DIR/reload.tsv" --domain tvs \
    --emb-dim 32 --seed 7 --model-out "$RELOAD_DIR/reload.model" >/dev/null
  # The model.load fault also fires on the server's own startup load
  # (the injection point sits inside LoadModel itself), and the fault
  # RNG is deterministic per seed — so advance the seed per attempt and
  # retry until a seed whose first draw spares the startup comes up
  # (seed 2 does; seed 1 does not).
  RELOAD_PID=""
  for FAULT_SEED in $(seq 1 10); do
    : > "$RELOAD_LOG"
    LEAPME_FAULTS="seed=$FAULT_SEED;model.load:error:p=0.5;model.save:error:p=0.5" \
      build/src/cli/leapme serve --model "$RELOAD_DIR/reload.model" \
      --port 0 --domain tvs --emb-dim 32 --seed 7 --deadline-ms 2000 \
      2>"$RELOAD_LOG" &
    RELOAD_PID=$!
    trap 'kill "$RELOAD_PID" 2>/dev/null || true' EXIT
    RELOAD_PORT=""
    for _ in $(seq 1 50); do
      kill -0 "$RELOAD_PID" 2>/dev/null || break
      RELOAD_PORT="$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' \
        "$RELOAD_LOG" | head -n 1)"
      [[ -n "$RELOAD_PORT" ]] && break
      sleep 0.1
    done
    [[ -n "$RELOAD_PORT" ]] && break
    wait "$RELOAD_PID" 2>/dev/null || true
    RELOAD_PID=""
  done
  [[ -n "${RELOAD_PORT:-}" ]] || {
    echo "reload-chaos server never came up"; cat "$RELOAD_LOG"; exit 1; }
  # 8x600 requests keep checked traffic flowing for a couple of
  # seconds, long enough for the 10ms reload cadence to land dozens of
  # attempts — the p=0.5 storm then guarantees both outcomes appear.
  build/bench/serve_client --port "$RELOAD_PORT" --clients 8 --requests 600 \
    --pairs 8 --domain tvs --emb-dim 32 --seed 7 \
    --model "$RELOAD_DIR/reload.model" --data "$RELOAD_DIR/reload.tsv" \
    --retry-budget 8 --reload-interval-ms 10 \
    | tee "$RELOAD_DIR/client.stdout"
  grep -Eq '"reloads_rejected":[1-9]' "$RELOAD_DIR/client.stdout" || {
    echo "no reload was rejected under the fault storm"; exit 1; }
  grep -Eq '"reloads_ok":[1-9]' "$RELOAD_DIR/client.stdout" || {
    echo "no reload succeeded under the fault storm"; exit 1; }
  kill "$RELOAD_PID" 2>/dev/null || true
  wait "$RELOAD_PID" 2>/dev/null || true
  trap - EXIT
  rm -rf "$RELOAD_DIR"
fi

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== tier 2: ThreadSanitizer on the parallel + serve + chaos + blocking + workload + cache labels =="
  cmake -B build-tsan -S . -DLEAPME_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS"
  ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
    -L 'parallel|serve|chaos|blocking|workload|cache'
  # Idle-fleet smoke under TSan: the 10k keep-alive test already ran as
  # part of the serve label above; re-run it by name so a label
  # reshuffle cannot silently drop it from the sanitizer tier.
  ctest --test-dir build-tsan --output-on-failure \
    -R 'TenThousandIdleConnectionsStayResponsive'
  # Same insurance for the sharded-cache stress test: many threads
  # hammering overlapping keys across shards is exactly the shape TSan
  # exists for, so pin it by name too.
  ctest --test-dir build-tsan --output-on-failure \
    -R 'ManyThreadsHammerOverlappingKeys'
  # And the hot-reload stress: scorer threads racing generation swaps is
  # the exact shape the registry's RCU hand-out must survive, so pin it
  # by name alongside the label run.
  ctest --test-dir build-tsan --output-on-failure \
    -R 'ReloadStressUnderConcurrentScoring'
fi

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  echo "== tier 3: AddressSanitizer on the parallel + serve + chaos + blocking labels =="
  cmake -B build-asan -S . -DLEAPME_SANITIZE=address
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
    -L 'parallel|serve|chaos|blocking'
fi

if [[ "${SKIP_UBSAN:-0}" != "1" ]]; then
  echo "== tier 4: UndefinedBehaviorSanitizer on the kernels label =="
  cmake -B build-ubsan -S . -DLEAPME_SANITIZE=undefined
  cmake --build build-ubsan -j "$JOBS"
  ctest --test-dir build-ubsan --output-on-failure -j "$JOBS" -L kernels
  LEAPME_KERNEL=scalar ctest --test-dir build-ubsan --output-on-failure \
    -j "$JOBS" -L kernels
fi

echo "ci.sh: all checks passed"
