// Custom embeddings: plugging a GloVe-format vector file into LEAPME.
//
// The paper uses the pre-trained 300-d GloVe Common-Crawl vectors. Any
// file in the standard text format ("word v1 v2 ... vd" per line) works:
//   auto model = embedding::TextEmbeddingFile::Load("glove.42B.300d.txt");
//
// This example writes a miniature vector file, loads it, and matches a
// hand-built two-source schema with it — demonstrating exactly the code
// path a user with the real GloVe file would run.

#include <cstdio>
#include <fstream>

#include "core/leapme.h"
#include "embedding/text_embedding_file.h"

using namespace leapme;

int main() {
  // A miniature "pre-trained" vector file: resolution-words cluster along
  // the first axis, weight-words along the second, color-words third.
  const std::string vectors_path = "/tmp/leapme_mini_vectors.txt";
  {
    std::ofstream out(vectors_path);
    out << "resolution 0.96 0.05 0.02\n"
           "megapixels 0.94 0.02 0.01\n"
           "mp 0.91 0.08 0.03\n"
           "pixels 0.89 0.01 0.07\n"
           "weight 0.03 0.97 0.04\n"
           "mass 0.02 0.94 0.02\n"
           "grams 0.06 0.91 0.05\n"
           "g 0.04 0.88 0.01\n"
           "color 0.01 0.03 0.95\n"
           "colour 0.02 0.02 0.97\n"
           "black 0.05 0.04 0.80\n"
           "silver 0.03 0.06 0.78\n";
  }
  auto model = embedding::TextEmbeddingFile::Load(
      vectors_path, embedding::OovPolicy::kZeroVector);
  if (!model.ok()) {
    std::fprintf(stderr, "load: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu vectors of dimension %zu from %s\n",
              model->vocabulary_size(), model->dimension(),
              vectors_path.c_str());

  // Two shop schemas with differently named but equivalent properties.
  data::Dataset dataset("mini-shop");
  data::SourceId shop_a = dataset.AddSource("shop_a");
  data::SourceId shop_b = dataset.AddSource("shop_b");
  data::PropertyId a_res =
      dataset.AddProperty(shop_a, "resolution", "resolution");
  data::PropertyId a_weight = dataset.AddProperty(shop_a, "weight", "weight");
  data::PropertyId a_color = dataset.AddProperty(shop_a, "color", "color");
  data::PropertyId b_res =
      dataset.AddProperty(shop_b, "megapixels", "resolution");
  data::PropertyId b_weight = dataset.AddProperty(shop_b, "mass", "weight");
  data::PropertyId b_color = dataset.AddProperty(shop_b, "colour", "color");
  for (int i = 0; i < 12; ++i) {
    std::string e = "prod_" + std::to_string(i);
    dataset.AddInstance(a_res, e, std::to_string(12 + i) + " mp");
    dataset.AddInstance(b_res, e, std::to_string(12 + i) + " megapixels");
    dataset.AddInstance(a_weight, e, std::to_string(300 + 10 * i) + " g");
    dataset.AddInstance(b_weight, e, std::to_string(300 + 10 * i) + " grams");
    dataset.AddInstance(a_color, e, i % 2 == 0 ? "black" : "silver");
    dataset.AddInstance(b_color, e, i % 2 == 0 ? "black" : "silver");
  }

  // Hand-labeled training pairs (in a real setting these come from an
  // existing alignment); here: the three matches and some negatives.
  std::vector<data::LabeledPair> training{
      {{a_res, b_res}, 1},      {{a_weight, b_weight}, 1},
      {{a_color, b_color}, 1},  {{a_res, b_weight}, 0},
      {{a_res, b_color}, 0},    {{a_weight, b_res}, 0},
      {{a_weight, b_color}, 0}, {{a_color, b_res}, 0},
      {{a_color, b_weight}, 0},
  };

  // A tiny network is plenty for nine training pairs.
  core::LeapmeOptions options;
  options.hidden_sizes = {16, 8};
  options.trainer.batch_size = 4;
  core::LeapmeMatcher matcher(&model.value(), options);
  if (Status status = matcher.Fit(dataset, training); !status.ok()) {
    std::fprintf(stderr, "fit: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("\npair scores (positive-class softmax output):\n");
  std::vector<data::PropertyPair> pairs = dataset.AllCrossSourcePairs();
  auto scores = matcher.ScorePairs(pairs);
  if (!scores.ok()) {
    std::fprintf(stderr, "score: %s\n", scores.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    std::printf("  %-12s ~ %-12s  %.3f %s\n",
                dataset.property(pairs[i].a).name.c_str(),
                dataset.property(pairs[i].b).name.c_str(), (*scores)[i],
                dataset.IsMatch(pairs[i].a, pairs[i].b) ? "(match)" : "");
  }
  return 0;
}
