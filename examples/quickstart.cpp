// Quickstart: the paper's Fig. 1 scenario end-to-end.
//
// Camera entities from several shop sites carry differently named
// properties ("camera resolution" / "effective pixels" / "megapixels").
// We generate such a multi-source catalog, train LEAPME on the pairs
// between two training sources, and print the property matches it
// discovers among the remaining sources.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/leapme.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "embedding/synthetic_model.h"
#include "ml/metrics.h"

using namespace leapme;

int main() {
  // 1. A small camera catalog: 4 shop sites, 20 products each, sampled
  //    from a shared universe of products (as in the DI2KG challenge).
  data::GeneratorOptions generator;
  generator.num_sources = 4;
  generator.min_entities_per_source = 20;
  generator.max_entities_per_source = 20;
  generator.seed = 2021;
  auto dataset = data::GenerateCatalog(data::CameraDomain(), generator);
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("catalog: %zu sources, %zu properties, %zu instances\n",
              dataset->source_count(), dataset->property_count(),
              dataset->instance_count());

  // 2. A word-embedding model. Here: the deterministic synthetic space
  //    built from the camera vocabulary (drop in TextEmbeddingFile::Load
  //    with real GloVe vectors instead — see examples/custom_embeddings).
  embedding::SyntheticModelOptions embedding_options;
  embedding_options.dimension = 64;
  embedding_options.seed = 7;
  embedding_options.oov_policy = embedding::OovPolicy::kHashedVector;
  auto model = embedding::SyntheticEmbeddingModel::Build(
      data::DomainClusters(data::CameraDomain()), embedding_options);
  if (!model.ok()) {
    std::fprintf(stderr, "embeddings: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  // 3. Labeled pairs from two training sources (paper §V-B: positives are
  //    properties aligned to the same reference, plus 2 random negatives
  //    per positive).
  Rng rng(99);
  data::SourceSplit split = data::SplitSources(*dataset, 0.5, rng);
  auto training_pairs =
      data::BuildTrainingPairs(*dataset, split.train_sources, 2.0, rng);
  if (!training_pairs.ok()) {
    std::fprintf(stderr, "pairs: %s\n",
                 training_pairs.status().ToString().c_str());
    return 1;
  }
  std::printf("training on %zu labeled pairs from %zu sources\n",
              training_pairs->size(), split.train_sources.size());

  // 4. Train LEAPME (Algorithm 1) with the paper's defaults: all features,
  //    hidden layers 128/64, batch 32, 10+5+5 epochs.
  core::LeapmeMatcher matcher(&model.value());
  if (Status status = matcher.Fit(*dataset, *training_pairs); !status.ok()) {
    std::fprintf(stderr, "fit: %s\n", status.ToString().c_str());
    return 1;
  }

  // 5. Classify the unseen pairs and show what was found.
  std::vector<data::LabeledPair> test_pairs =
      data::BuildTestPairs(*dataset, split.train_sources);
  std::vector<data::PropertyPair> pairs;
  std::vector<int32_t> labels;
  for (const auto& labeled : test_pairs) {
    pairs.push_back(labeled.pair);
    labels.push_back(labeled.label);
  }
  auto scores = matcher.ScorePairs(pairs);
  if (!scores.ok()) {
    std::fprintf(stderr, "score: %s\n",
                 scores.status().ToString().c_str());
    return 1;
  }

  std::printf("\nsample discovered matches (score >= 0.5):\n");
  int shown = 0;
  for (size_t i = 0; i < pairs.size() && shown < 12; ++i) {
    if ((*scores)[i] < 0.5) continue;
    const auto& pa = dataset->property(pairs[i].a);
    const auto& pb = dataset->property(pairs[i].b);
    std::printf("  %-28s (%s)  ~  %-28s (%s)   score %.2f %s\n",
                pa.name.c_str(),
                dataset->source_name(pa.source).c_str(), pb.name.c_str(),
                dataset->source_name(pb.source).c_str(), (*scores)[i],
                labels[i] != 0 ? "" : "[incorrect]");
    ++shown;
  }

  std::vector<int32_t> predictions(scores->size());
  for (size_t i = 0; i < scores->size(); ++i) {
    predictions[i] = (*scores)[i] >= 0.5 ? 1 : 0;
  }
  ml::MatchQuality quality = ml::ComputeQuality(predictions, labels);
  std::printf("\nmatch quality on unseen sources: %s\n",
              quality.ToString().c_str());
  return 0;
}
