// Transfer matching: train LEAPME on one product domain and apply the
// trained classifier to a different domain (the paper's §V transfer-
// learning study).
//
// The embedding space covers both domains' vocabularies (as pre-trained
// GloVe does); the classifier learns *how to weigh feature differences*,
// which transfers across domains even though the properties differ.

#include <cstdio>

#include "core/leapme.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "embedding/synthetic_model.h"
#include "ml/metrics.h"

using namespace leapme;

namespace {

StatusOr<data::Dataset> Generate(const data::DomainSpec& domain,
                                 uint64_t seed) {
  data::GeneratorOptions options;
  options.num_sources = 6;
  options.min_entities_per_source = 25;
  options.max_entities_per_source = 25;
  options.seed = seed;
  return data::GenerateCatalog(domain, options);
}

}  // namespace

int main() {
  // One embedding space spanning both domains, like a single pre-trained
  // GloVe model would.
  std::vector<embedding::SemanticCluster> clusters =
      data::DomainClusters(data::CameraDomain());
  for (auto& cluster : data::DomainClusters(data::TvDomain())) {
    clusters.push_back(cluster);
  }
  auto model = embedding::SyntheticEmbeddingModel::Build(
      clusters, {.dimension = 64,
                 .seed = 11,
                 .oov_policy = embedding::OovPolicy::kHashedVector});
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }

  auto cameras = Generate(data::CameraDomain(), 100);
  auto tvs = Generate(data::TvDomain(), 200);
  if (!cameras.ok() || !tvs.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }

  // Train on ALL camera cross-source pairs (cameras is the "labeled"
  // domain we already integrated).
  Rng rng(12);
  std::vector<data::SourceId> all_camera_sources;
  for (data::SourceId s = 0; s < cameras->source_count(); ++s) {
    all_camera_sources.push_back(s);
  }
  auto training =
      data::BuildTrainingPairs(*cameras, all_camera_sources, 2.0, rng);
  if (!training.ok()) {
    std::fprintf(stderr, "%s\n", training.status().ToString().c_str());
    return 1;
  }
  core::LeapmeMatcher matcher(&model.value());
  if (Status status = matcher.Fit(*cameras, *training); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("trained on %zu camera pairs\n", training->size());

  // Apply to the TV domain without any TV labels.
  std::vector<data::PropertyPair> tv_pairs = tvs->AllCrossSourcePairs();
  auto scores = matcher.ScorePairsOn(*tvs, tv_pairs);
  if (!scores.ok()) {
    std::fprintf(stderr, "%s\n", scores.status().ToString().c_str());
    return 1;
  }
  std::vector<int32_t> predictions(scores->size());
  std::vector<int32_t> labels(scores->size());
  for (size_t i = 0; i < tv_pairs.size(); ++i) {
    predictions[i] = (*scores)[i] >= 0.5 ? 1 : 0;
    labels[i] = tvs->IsMatch(tv_pairs[i].a, tv_pairs[i].b) ? 1 : 0;
  }
  ml::MatchQuality transfer = ml::ComputeQuality(predictions, labels);
  std::printf("cameras -> tvs transfer quality: %s\n",
              transfer.ToString().c_str());

  // For reference: in-domain training on TVs with the same budget.
  data::SourceSplit tv_split = data::SplitSources(*tvs, 0.8, rng);
  auto tv_training =
      data::BuildTrainingPairs(*tvs, tv_split.train_sources, 2.0, rng);
  if (tv_training.ok()) {
    core::LeapmeMatcher in_domain(&model.value());
    if (in_domain.Fit(*tvs, *tv_training).ok()) {
      auto test_pairs = data::BuildTestPairs(*tvs, tv_split.train_sources);
      std::vector<data::PropertyPair> pairs;
      std::vector<int32_t> test_labels;
      for (const auto& labeled : test_pairs) {
        pairs.push_back(labeled.pair);
        test_labels.push_back(labeled.label);
      }
      auto in_domain_decisions = in_domain.ClassifyPairs(pairs);
      if (in_domain_decisions.ok()) {
        ml::MatchQuality quality =
            ml::ComputeQuality(*in_domain_decisions, test_labels);
        std::printf("tvs in-domain (80%% sources):    %s\n",
                    quality.ToString().c_str());
      }
    }
  }
  return 0;
}
