// Scalable matching: the workflow for large multi-source catalogs.
//
// The cross-source pair space is quadratic in the number of properties
// (the paper's camera dataset already has >3200 properties = ~5M pairs).
// This example combines two library extensions:
//   1. candidate blocking (name-token index + embedding LSH, parsed from a
//      CandidatePipeline spec string — the same grammar the CLI's
//      --blocking flag accepts) to prune the pair space before scoring,
//   2. model persistence, so the trained matcher is reused across runs
//      without retraining.

#include <cstdio>
#include <set>

#include "blocking/candidate_pipeline.h"
#include "core/leapme.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "embedding/synthetic_model.h"
#include "ml/metrics.h"

using namespace leapme;

int main() {
  // A larger camera catalog than the quickstart's.
  data::GeneratorOptions generator = data::HighQualityOptions(10, 40);
  generator.seed = 31;
  auto dataset = data::GenerateCatalog(data::CameraDomain(), generator);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  auto model = embedding::SyntheticEmbeddingModel::Build(
      data::DomainClusters(data::CameraDomain()),
      {.dimension = 64,
       .seed = 32,
       .oov_policy = embedding::OovPolicy::kHashedVector});
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }

  // Train once and persist; later runs can LoadModel instead.
  const std::string model_path = "/tmp/leapme_cameras.model";
  {
    Rng rng(33);
    data::SourceSplit split = data::SplitSources(*dataset, 0.8, rng);
    auto training =
        data::BuildTrainingPairs(*dataset, split.train_sources, 2.0, rng);
    if (!training.ok()) {
      std::fprintf(stderr, "%s\n", training.status().ToString().c_str());
      return 1;
    }
    core::LeapmeMatcher matcher(&model.value());
    if (Status status = matcher.Fit(*dataset, *training); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    if (Status status = matcher.SaveModel(model_path); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("trained and saved matcher to %s\n", model_path.c_str());
  }

  // A "later run": restore the trained matcher.
  auto restored = core::LeapmeMatcher::LoadModel(&model.value(), model_path);
  if (!restored.ok()) {
    std::fprintf(stderr, "%s\n", restored.status().ToString().c_str());
    return 1;
  }

  // Prune the quadratic pair space with the union blocker, built from the
  // same spec string `leapme match --blocking=...` accepts.
  auto pipeline = blocking::CandidatePipeline::Parse(
      "union(name-token,embedding-lsh)", &model.value());
  if (!pipeline.ok()) {
    std::fprintf(stderr, "%s\n", pipeline.status().ToString().c_str());
    return 1;
  }
  auto candidates = (*pipeline)->Candidates(*dataset);
  if (!candidates.ok()) {
    std::fprintf(stderr, "%s\n", candidates.status().ToString().c_str());
    return 1;
  }
  blocking::BlockingQuality blocking_quality =
      blocking::EvaluateBlocking(*dataset, *candidates);
  std::printf("blocking: %zu of %zu pairs kept (%.0f%% reduction, "
              "%.0f%% of true matches retained)\n",
              blocking_quality.candidate_count, blocking_quality.total_pairs,
              100.0 * blocking_quality.reduction_ratio,
              100.0 * blocking_quality.pair_completeness);

  // Score only the candidates with the restored matcher.
  auto scores = restored->ScorePairsOn(*dataset, *candidates);
  if (!scores.ok()) {
    std::fprintf(stderr, "%s\n", scores.status().ToString().c_str());
    return 1;
  }

  // Quality over the FULL pair space: non-candidates count as non-match.
  std::set<std::pair<data::PropertyId, data::PropertyId>> predicted;
  for (size_t i = 0; i < candidates->size(); ++i) {
    if ((*scores)[i] >= restored->decision_threshold()) {
      predicted.emplace((*candidates)[i].a, (*candidates)[i].b);
    }
  }
  ml::ConfusionCounts counts;
  for (const data::PropertyPair& pair : dataset->AllCrossSourcePairs()) {
    counts.Add(predicted.count({pair.a, pair.b}) > 0,
               dataset->IsMatch(pair.a, pair.b));
  }
  ml::MatchQuality quality = ml::ComputeQuality(counts);
  std::printf("end-to-end (blocked, restored model): %s\n",
              quality.ToString().c_str());
  return 0;
}
