// Catalog integration: from raw multi-source property instances to
// clusters of equivalent properties — the knowledge-graph construction
// workflow motivating the paper (§I, §VI).
//
// Pipeline: generate a phones catalog -> persist it as TSV (the
// interchange format for real data) -> reload -> train LEAPME -> build the
// similarity graph over ALL cross-source pairs -> derive property
// clusters (star clustering) -> report cluster quality and contents.

#include <cstdio>
#include <map>

#include "core/leapme.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "data/tsv_io.h"
#include "embedding/synthetic_model.h"
#include "graph/similarity_graph.h"

using namespace leapme;

int main() {
  // Generate and persist a phones catalog, then reload it: this mirrors
  // the workflow with real exported data.
  data::GeneratorOptions generator = data::LowQualityOptions(6);
  generator.min_entities_per_source = 20;
  generator.max_entities_per_source = 40;
  generator.seed = 4242;
  auto generated = data::GenerateCatalog(data::PhoneDomain(), generator);
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  const std::string tsv_path = "/tmp/leapme_phones.tsv";
  if (Status status = data::WriteDatasetTsv(*generated, tsv_path);
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  auto dataset = data::ReadDatasetTsv(tsv_path, "phones");
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %s: %zu sources, %zu properties\n", tsv_path.c_str(),
              dataset->source_count(), dataset->property_count());

  auto model = embedding::SyntheticEmbeddingModel::Build(
      data::DomainClusters(data::PhoneDomain()),
      {.dimension = 64,
       .seed = 17,
       .oov_policy = embedding::OovPolicy::kHashedVector});
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }

  Rng rng(5);
  data::SourceSplit split = data::SplitSources(*dataset, 0.6, rng);
  auto training_pairs =
      data::BuildTrainingPairs(*dataset, split.train_sources, 2.0, rng);
  if (!training_pairs.ok()) {
    std::fprintf(stderr, "%s\n",
                 training_pairs.status().ToString().c_str());
    return 1;
  }

  core::LeapmeMatcher matcher(&model.value());
  if (Status status = matcher.Fit(*dataset, *training_pairs); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  // Similarity graph over the full candidate space, then clusters.
  auto graph = matcher.BuildSimilarityGraph(dataset->AllCrossSourcePairs());
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("similarity graph: %zu edges above threshold %.2f\n",
              graph->edge_count(), matcher.options().decision_threshold);

  graph::Clusters star = graph::StarClusters(*graph, 0.5);
  graph::Clusters components = graph::ConnectedComponentClusters(*graph, 0.5);
  graph::ClusterQuality star_quality =
      graph::EvaluateClusters(star, *dataset);
  graph::ClusterQuality component_quality =
      graph::EvaluateClusters(components, *dataset);
  std::printf("star clustering:        P=%.2f R=%.2f F1=%.2f (%zu clusters)\n",
              star_quality.precision, star_quality.recall, star_quality.f1,
              star_quality.non_singleton_clusters);
  std::printf("connected components:   P=%.2f R=%.2f F1=%.2f (%zu clusters)\n",
              component_quality.precision, component_quality.recall,
              component_quality.f1,
              component_quality.non_singleton_clusters);

  // Show a few clusters: these are the fused properties a knowledge graph
  // would store once each.
  std::printf("\nsample property clusters:\n");
  int shown = 0;
  for (const auto& cluster : star) {
    if (cluster.size() < 3 || shown >= 5) continue;
    std::printf("  cluster:");
    for (data::PropertyId id : cluster) {
      std::printf("  '%s'", dataset->property(id).name.c_str());
    }
    std::printf("\n");
    ++shown;
  }
  return 0;
}
