// Substrate micro-benchmarks (google-benchmark): string metrics, q-gram
// profiles, instance feature extraction, embedding pooling, GEMM, one NN
// training step, minhash signatures. These measure the building blocks
// whose cost dominates the end-to-end experiment harness.

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "data/domain.h"
#include "embedding/synthetic_model.h"
#include "features/feature_pipeline.h"
#include "features/instance_features.h"
#include "nn/mlp.h"
#include "text/ngram.h"
#include "text/string_metrics.h"
#include "text/tokenizer.h"

namespace {

using namespace leapme;

const char* kNameA = "camera resolution";
const char* kNameB = "effective pixels (approx.)";

void BM_Levenshtein(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::Levenshtein(kNameA, kNameB));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_OptimalStringAlignment(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::OptimalStringAlignment(kNameA, kNameB));
  }
}
BENCHMARK(BM_OptimalStringAlignment);

void BM_DamerauLevenshtein(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::DamerauLevenshtein(kNameA, kNameB));
  }
}
BENCHMARK(BM_DamerauLevenshtein);

void BM_JaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::JaroWinklerDistance(kNameA, kNameB));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_ThreeGramCosine(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::ThreeGramCosineDistance(kNameA, kNameB));
  }
}
BENCHMARK(BM_ThreeGramCosine);

void BM_Tokenize(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        text::TokenizeKeepNumbers("117 x 68.4 x 50 mm (approx.) WiFi"));
  }
}
BENCHMARK(BM_Tokenize);

embedding::SyntheticEmbeddingModel BuildModel(size_t dimension) {
  embedding::SyntheticModelOptions options;
  options.dimension = dimension;
  return std::move(embedding::SyntheticEmbeddingModel::Build(
                       data::DomainClusters(data::CameraDomain()), options))
      .value();
}

void BM_InstanceFeatures(benchmark::State& state) {
  auto model = BuildModel(static_cast<size_t>(state.range(0)));
  features::InstanceFeatureExtractor extractor(&model);
  std::vector<float> out(extractor.dimension());
  for (auto _ : state) {
    extractor.Extract("24.3 MP (approx.)", out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_InstanceFeatures)->Arg(48)->Arg(300);

void BM_AverageEmbedding(benchmark::State& state) {
  auto model = BuildModel(static_cast<size_t>(state.range(0)));
  std::vector<std::string> words =
      text::EmbeddingWords("camera resolution megapixels");
  for (auto _ : state) {
    benchmark::DoNotOptimize(embedding::AverageEmbedding(model, words));
  }
}
BENCHMARK(BM_AverageEmbedding)->Arg(48)->Arg(300);

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  nn::Matrix a(n, n);
  nn::Matrix b(n, n);
  Rng rng(1);
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.NextDouble());
    b.data()[i] = static_cast<float>(rng.NextDouble());
  }
  nn::Matrix out;
  for (auto _ : state) {
    nn::Gemm(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// 1-vs-N thread scaling of the parallel GEMM path (the matrix is large
// enough to cross the row-partitioning threshold). The `threads` counter
// lands in the benchmark JSON so scaling runs are self-describing.
void BM_GemmThreads(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto threads = static_cast<size_t>(state.range(1));
  SetGlobalThreadCount(threads);
  nn::Matrix a(n, n);
  nn::Matrix b(n, n);
  Rng rng(1);
  for (size_t i = 0; i < a.size(); ++i) {
    a.data()[i] = static_cast<float>(rng.NextDouble());
    b.data()[i] = static_cast<float>(rng.NextDouble());
  }
  nn::Matrix out;
  for (auto _ : state) {
    nn::Gemm(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
  state.counters["threads"] = static_cast<double>(threads);
  SetGlobalThreadCount(0);  // restore --threads/LEAPME_THREADS/hardware
}
BENCHMARK(BM_GemmThreads)
    ->Args({256, 1})
    ->Args({256, 2})
    ->Args({256, 4})
    ->UseRealTime();  // wall clock: the submitting thread mostly waits

// 1-vs-N thread scaling of the feature stage: design-matrix assembly
// (string distances + vector differences per row) over a block of pairs.
void BM_BuildDesignMatrixThreads(benchmark::State& state) {
  const auto threads = static_cast<size_t>(state.range(0));
  auto model = BuildModel(48);
  features::FeaturePipeline pipeline(&model);
  const data::DomainSpec& domain = data::CameraDomain();
  std::vector<features::PropertyFeatures> properties;
  std::vector<std::string> values = {"24.3 MP", "6000 x 4000",
                                     "approx. 24 megapixels"};
  for (const data::ReferenceProperty& property : domain.properties) {
    for (const std::string& name : property.surface_names) {
      properties.push_back(pipeline.ComputeProperty(name, values));
    }
  }
  constexpr size_t kPairs = 2048;
  std::vector<const features::PropertyFeatures*> lhs(kPairs);
  std::vector<const features::PropertyFeatures*> rhs(kPairs);
  for (size_t i = 0; i < kPairs; ++i) {
    lhs[i] = &properties[i % properties.size()];
    rhs[i] = &properties[(i * 7 + 3) % properties.size()];
  }
  for (auto _ : state) {
    nn::Matrix design = pipeline.BuildDesignMatrix(lhs, rhs, {}, threads);
    benchmark::DoNotOptimize(design.data());
  }
  state.SetItemsProcessed(state.iterations() * kPairs);
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_BuildDesignMatrixThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_MlpTrainBatch(benchmark::State& state) {
  const auto input_dim = static_cast<size_t>(state.range(0));
  Rng rng(2);
  nn::Mlp mlp = nn::BuildMlp(input_dim, {128, 64}, 2, rng);
  nn::AdamOptimizer adam(1e-3);
  nn::Matrix batch(32, input_dim);
  std::vector<int32_t> labels(32);
  for (size_t i = 0; i < batch.size(); ++i) {
    batch.data()[i] = static_cast<float>(rng.NextDouble(-1, 1));
  }
  for (size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<int32_t>(rng.NextBounded(2));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.TrainBatch(batch, labels, adam));
  }
}
BENCHMARK(BM_MlpTrainBatch)->Arg(133)->Arg(637);

void BM_MlpPredictBatch(benchmark::State& state) {
  const auto input_dim = static_cast<size_t>(state.range(0));
  Rng rng(3);
  nn::Mlp mlp = nn::BuildMlp(input_dim, {128, 64}, 2, rng);
  nn::Matrix batch(1024, input_dim);
  for (size_t i = 0; i < batch.size(); ++i) {
    batch.data()[i] = static_cast<float>(rng.NextDouble(-1, 1));
  }
  nn::Matrix probabilities;
  for (auto _ : state) {
    mlp.Predict(batch, &probabilities);
    benchmark::DoNotOptimize(probabilities.data());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_MlpPredictBatch)->Arg(133)->Arg(637);

void BM_MinhashSignature(benchmark::State& state) {
  // 64 hash functions over a 100-token set, the LSH baseline's kernel.
  std::vector<std::string> tokens;
  for (int i = 0; i < 100; ++i) {
    tokens.push_back("token" + std::to_string(i));
  }
  std::vector<uint64_t> seeds(64);
  Rng rng(4);
  for (auto& seed : seeds) seed = rng.Next();
  for (auto _ : state) {
    std::vector<uint64_t> signature(64, ~uint64_t{0});
    for (const std::string& token : tokens) {
      uint64_t h = HashBytes(token.data(), token.size());
      for (size_t i = 0; i < seeds.size(); ++i) {
        uint64_t value = Mix64(h ^ seeds[i]);
        if (value < signature[i]) signature[i] = value;
      }
    }
    benchmark::DoNotOptimize(signature.data());
  }
}
BENCHMARK(BM_MinhashSignature);

// Console reporter that also collects per-benchmark real time so the run
// lands in the shared BENCH_micro.json report (see bench_util.h).
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      collected_.emplace_back(run.benchmark_name(),
                              run.GetAdjustedRealTime());
    }
  }

  const std::vector<std::pair<std::string, double>>& collected() const {
    return collected_;
  }

 private:
  std::vector<std::pair<std::string, double>> collected_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  leapme::bench::JsonReport report("micro");
  for (const auto& [name, real_time_ns] : reporter.collected()) {
    report.Metric(name + "_ns", real_time_ns);
  }
  leapme::bench::WriteJsonReport(report);
  return 0;
}
