// Kernel-layer benchmark: ns/op and GB/s for every entry of the
// dispatched kernel table (common/kernels), measured on each available
// dispatch path (scalar, avx2) plus a "baseline" replica of the plain
// pre-kernel-layer loops this PR replaced. The speedup_* metrics compare
// the best available SIMD path against that baseline — CI asserts the
// floors documented in DESIGN.md §12 (>=2x for 300-d dot/cosine, >=1.5x
// for single-thread a*b^T GEMM on AVX2 hardware). Ends with an
// end-to-end ScorePairs throughput measurement so kernel-level wins are
// tied to the number that matters.
//
// Environment knobs: LEAPME_SCALE (test shrinks the repetition budget),
// LEAPME_KERNEL (restricts which dispatch paths exist, as everywhere).

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/kernels/aligned.h"
#include "common/kernels/kernels.h"
#include "common/rng.h"
#include "core/leapme.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "embedding/synthetic_model.h"

namespace {

using namespace leapme;

constexpr size_t kDim = 300;  // GloVe-sized vectors, the paper's setting

// Keeps `value` observable so timed loops are not optimized away.
template <typename T>
inline void Sink(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

/// Times `fn` (one logical op per call): warms up, then repeats until the
/// budget elapses and returns mean ns/op.
template <typename Fn>
double TimeNs(Fn&& fn, double budget_ms) {
  for (int i = 0; i < 3; ++i) fn();
  const auto budget = std::chrono::duration<double, std::milli>(budget_ms);
  size_t ops = 0;
  const auto begin = std::chrono::steady_clock::now();
  std::chrono::steady_clock::time_point now;
  do {
    for (int i = 0; i < 16; ++i) fn();
    ops += 16;
    now = std::chrono::steady_clock::now();
  } while (now - begin < budget);
  return std::chrono::duration<double, std::nano>(now - begin).count() /
         static_cast<double>(ops);
}

void FillRandom(Rng& rng, float* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<float>(rng.NextDouble(-1.0, 1.0));
  }
}

// --- Baseline replicas of the pre-kernel-layer loops -------------------
// These are the exact shapes the hot paths used before this PR: strict
// sequential reductions and plain elementwise loops, compiled in this TU
// without any vector ISA so the compiler cannot auto-vectorize the
// reductions (strict FP semantics forbid it anyway).

float BaselineDot(const float* a, const float* b, size_t n) {
  float sum = 0.0f;
  for (size_t i = 0; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

float BaselineCosine(const float* a, const float* b, size_t n) {
  const float dot = BaselineDot(a, b, n);
  const float norm_a = std::sqrt(BaselineDot(a, a, n));
  const float norm_b = std::sqrt(BaselineDot(b, b, n));
  if (norm_a == 0.0f || norm_b == 0.0f) return 0.0f;
  return dot / (norm_a * norm_b);
}

void BaselineAxpy(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void BaselineGemmTb(const float* a, const float* b, float* out, size_t rows,
                    size_t k, size_t m) {
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < m; ++j) {
      out[i * m + j] = BaselineDot(a + i * k, b + j * k, k);
    }
  }
}

struct PathResult {
  std::string path;
  double ns;
  double gbps;
};

}  // namespace

int main() {
  const bool quick = bench::ScaleFromEnv() == eval::EvalScale::kTest;
  const double budget_ms = quick ? 5.0 : 60.0;

  Rng rng(4242);
  kernels::AlignedFloatVector a(kDim);
  kernels::AlignedFloatVector b(kDim);
  kernels::AlignedFloatVector y(kDim);
  FillRandom(rng, a.data(), kDim);
  FillRandom(rng, b.data(), kDim);
  FillRandom(rng, y.data(), kDim);

  constexpr size_t kGemmRows = 64;
  constexpr size_t kGemmCols = 128;
  kernels::AlignedFloatVector ga(kGemmRows * kDim);
  kernels::AlignedFloatVector gb(kGemmCols * kDim);
  kernels::AlignedFloatVector gout(kGemmRows * kGemmCols);
  FillRandom(rng, ga.data(), ga.size());
  FillRandom(rng, gb.data(), gb.size());

  const double dot_bytes = 2.0 * kDim * sizeof(float);
  const double axpy_bytes = 3.0 * kDim * sizeof(float);
  const double gemm_bytes =
      static_cast<double>(kGemmRows * kDim + kGemmCols * kDim +
                          kGemmRows * kGemmCols) *
      sizeof(float);

  // The dispatch paths under test: every table the machine offers.
  std::vector<const kernels::KernelTable*> paths;
  paths.push_back(&kernels::ScalarKernels());
  if (const kernels::KernelTable* avx2 = kernels::Avx2Kernels()) {
    paths.push_back(avx2);
  }

  bench::JsonReport report("kernels");
  report.Metric("dim", static_cast<uint64_t>(kDim));
  std::printf("%-24s %-8s %12s %10s\n", "kernel", "path", "ns/op", "GB/s");

  auto emit = [&](const char* kernel_name, const char* path, double ns,
                  double bytes) {
    const double gbps = bytes / ns;  // bytes/ns == GB/s
    std::printf("%-24s %-8s %12.1f %10.2f\n", kernel_name, path, ns, gbps);
    report.Metric(StrFormat("%s_%s_ns", kernel_name, path), ns);
    report.Metric(StrFormat("%s_%s_gbps", kernel_name, path), gbps);
    return ns;
  };

  // Pre-PR loop replicas.
  const double base_dot = emit("dot300", "baseline", TimeNs([&] {
    Sink(BaselineDot(a.data(), b.data(), kDim));
  }, budget_ms), dot_bytes);
  const double base_cos = emit("cosine300", "baseline", TimeNs([&] {
    Sink(BaselineCosine(a.data(), b.data(), kDim));
  }, budget_ms), 3.0 * dot_bytes);
  emit("axpy300", "baseline", TimeNs([&] {
    BaselineAxpy(0.5f, a.data(), y.data(), kDim);
    Sink(y[0]);
  }, budget_ms), axpy_bytes);
  const double base_gemm = emit("gemm_tb", "baseline", TimeNs([&] {
    BaselineGemmTb(ga.data(), gb.data(), gout.data(), kGemmRows, kDim,
                   kGemmCols);
    Sink(gout[0]);
  }, budget_ms), gemm_bytes);

  // Dispatched kernels, per available path.
  double best_dot = base_dot;
  double best_cos = base_cos;
  double best_gemm = base_gemm;
  for (const kernels::KernelTable* table : paths) {
    const double dot_ns = emit("dot300", table->name, TimeNs([&] {
      Sink(table->dot(a.data(), b.data(), kDim));
    }, budget_ms), dot_bytes);
    const double cos_ns = emit("cosine300", table->name, TimeNs([&] {
      float dots[3];
      table->dot3(a.data(), b.data(), kDim, dots);
      Sink(kernels::CosineFromDots(dots[0], dots[1], dots[2]));
    }, budget_ms), 3.0 * dot_bytes);
    emit("squared_l2_300", table->name, TimeNs([&] {
      Sink(table->squared_l2(a.data(), b.data(), kDim));
    }, budget_ms), dot_bytes);
    emit("axpy300", table->name, TimeNs([&] {
      table->axpy(0.5f, a.data(), y.data(), kDim);
      Sink(y[0]);
    }, budget_ms), axpy_bytes);
    emit("abs_diff300", table->name, TimeNs([&] {
      table->abs_diff(a.data(), b.data(), y.data(), kDim);
      Sink(y[0]);
    }, budget_ms), axpy_bytes);
    const double gemm_ns = emit("gemm_tb", table->name, TimeNs([&] {
      table->gemm_tb(ga.data(), gb.data(), gout.data(), kGemmRows, kDim,
                     kGemmCols);
      Sink(gout[0]);
    }, budget_ms), gemm_bytes);
    best_dot = std::min(best_dot, dot_ns);
    best_cos = std::min(best_cos, cos_ns);
    best_gemm = std::min(best_gemm, gemm_ns);
  }

  report.Metric("speedup_dot300_vs_baseline", base_dot / best_dot);
  report.Metric("speedup_cosine300_vs_baseline", base_cos / best_cos);
  report.Metric("speedup_gemm_tb_vs_baseline", base_gemm / best_gemm);
  std::printf("\nspeedups vs pre-kernel-layer loops: dot300 %.2fx, "
              "cosine300 %.2fx, gemm_tb %.2fx\n",
              base_dot / best_dot, base_cos / best_cos,
              base_gemm / best_gemm);

  // --- End-to-end: ScorePairs throughput on the active path ------------
  data::GeneratorOptions generator;
  generator.num_sources = 4;
  generator.min_entities_per_source = quick ? 6 : 10;
  generator.max_entities_per_source = quick ? 6 : 10;
  generator.seed = 77;
  auto dataset = data::GenerateCatalog(data::HeadphoneDomain(), generator);
  bench::CheckOk(dataset.status(), "GenerateCatalog");
  auto model = embedding::SyntheticEmbeddingModel::Build(
      data::DomainClusters(data::HeadphoneDomain()),
      {.dimension = 32,
       .seed = 78,
       .oov_policy = embedding::OovPolicy::kHashedVector});
  bench::CheckOk(model.status(), "SyntheticEmbeddingModel::Build");
  Rng split_rng(79);
  data::SourceSplit split = data::SplitSources(*dataset, 0.8, split_rng);
  auto training =
      data::BuildTrainingPairs(*dataset, split.train_sources, 2.0, split_rng);
  bench::CheckOk(training.status(), "BuildTrainingPairs");
  core::LeapmeMatcher matcher(&model.value());
  bench::CheckOk(matcher.Fit(*dataset, *training), "Fit");

  const std::vector<data::PropertyPair> pairs =
      dataset->AllCrossSourcePairs();
  const auto begin = std::chrono::steady_clock::now();
  size_t scored = 0;
  const size_t score_reps = quick ? 1 : 5;
  for (size_t rep = 0; rep < score_reps; ++rep) {
    auto scores = matcher.ScorePairs(pairs);
    bench::CheckOk(scores.status(), "ScorePairs");
    scored += scores->size();
    Sink((*scores)[0]);
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  const double pairs_per_sec =
      elapsed > 0.0 ? static_cast<double>(scored) / elapsed : 0.0;
  std::printf("end-to-end ScorePairs: %zu pairs in %.3f s (%.0f pairs/s) "
              "on kernel path '%s'\n",
              scored, elapsed, pairs_per_sec, kernels::ActiveKernelName());
  report.Metric("score_pairs", static_cast<uint64_t>(scored));
  report.Metric("score_pairs_per_sec", pairs_per_sec);

  bench::WriteJsonReport(report);
  return 0;
}
