// Reproduces the paper's in-text training-data analysis ("We analyze the
// impact of different amounts of training data", §V): LEAPME F1 as a
// function of the fraction of sources used for training, per dataset,
// plus the negative-sampling-ratio ablation (the paper fixes 1:2).
//
// Environment knobs:
//   LEAPME_SCALE          test | bench (default) | paper
//   LEAPME_FRACTION_REPS  repetitions per point (default 2)

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "eval/report.h"

int main() {
  const auto scale = leapme::bench::ScaleFromEnv();
  leapme::eval::EvaluationOptions eval_options;
  eval_options.repetitions = static_cast<size_t>(
      leapme::eval::EnvInt("LEAPME_FRACTION_REPS", 2));

  leapme::eval::ResultsTable table;
  const double fractions[] = {0.2, 0.4, 0.6, 0.8};

  for (const auto& spec : leapme::eval::DefaultDatasetSpecs(scale)) {
    auto eval_dataset = leapme::eval::BuildEvalDataset(spec);
    leapme::bench::CheckOk(eval_dataset.status(), "BuildEvalDataset");

    for (double fraction : fractions) {
      eval_options.train_fraction = fraction;
      eval_options.negative_ratio = 2.0;
      auto result = leapme::eval::EvaluateMatcher(
          leapme::bench::LeapmeFactory({}, "LEAPME"), *eval_dataset,
          eval_options);
      leapme::bench::CheckOk(result.status(), "EvaluateMatcher");
      table.AddResult(
          "Training fraction sweep",
          leapme::StrFormat("%s %.0f%%", spec.name.c_str(), fraction * 100),
          "LEAPME", result->mean);
      std::fprintf(stderr, "[fractions] %s %.0f%%: F1=%.2f (%zu train pairs)\n",
                   spec.name.c_str(), fraction * 100, result->mean.f1,
                   result->mean_training_pairs);
    }

    // Negative-ratio ablation at the paper's 80% setting.
    eval_options.train_fraction = 0.8;
    for (double ratio : {1.0, 2.0, 4.0}) {
      eval_options.negative_ratio = ratio;
      auto result = leapme::eval::EvaluateMatcher(
          leapme::bench::LeapmeFactory({}, "LEAPME"), *eval_dataset,
          eval_options);
      leapme::bench::CheckOk(result.status(), "EvaluateMatcher(neg)");
      table.AddResult(
          "Negative sampling ratio (80% training)",
          leapme::StrFormat("%s 1:%.0f", spec.name.c_str(), ratio),
          "LEAPME", result->mean);
    }
  }

  std::printf("Training-data impact (paper §V in-text analysis)\n\n%s\n",
              table.Render().c_str());
  std::printf(
      "expected shape: F1 grows with the training fraction; LEAPME is\n"
      "already competitive at 20%% (paper observation 2). Higher negative\n"
      "ratios trade recall for precision around the paper's 1:2 choice.\n");

  leapme::bench::JsonReport report("training_fraction");
  report.Metric("repetitions", eval_options.repetitions);
  report.RawMetric("rows", table.RenderJsonRows());
  leapme::bench::WriteJsonReport(report);
  return 0;
}
