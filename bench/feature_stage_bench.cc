// Per-stage feature-timing benchmark: runs the registry-based
// FeaturePipeline over a synthetic catalog and reports each stage's cost
// from the pipeline's own StageTimings() counters — the same numbers the
// serve `stats` op exposes. Prints one JSON object mapping stage name to
// ns/property and ns/pair so runs are easy to diff and plot.
//
// Environment knobs: LEAPME_SCALE (test | bench | paper).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/domain.h"
#include "data/generator.h"
#include "embedding/synthetic_model.h"
#include "features/feature_pipeline.h"

namespace {

using namespace leapme;

struct BenchShape {
  size_t sources;
  size_t entities;
  size_t repetitions;  ///< full property+design passes, to stabilize timings
};

BenchShape ShapeFor(eval::EvalScale scale) {
  switch (scale) {
    case eval::EvalScale::kTest:
      return {3, 6, 1};
    case eval::EvalScale::kPaper:
      return {6, 16, 20};
    default:
      return {4, 10, 5};
  }
}

double PerCall(uint64_t ns, uint64_t calls) {
  return calls == 0 ? 0.0 : static_cast<double>(ns) / static_cast<double>(calls);
}

}  // namespace

int main() {
  const BenchShape shape = ShapeFor(bench::ScaleFromEnv());

  data::GeneratorOptions generator;
  generator.num_sources = shape.sources;
  generator.min_entities_per_source = shape.entities;
  generator.max_entities_per_source = shape.entities;
  generator.seed = 55;
  auto dataset_or = data::GenerateCatalog(data::TvDomain(), generator);
  bench::CheckOk(dataset_or.status(), "GenerateCatalog");
  const data::Dataset dataset = std::move(dataset_or).value();

  auto model_or = embedding::SyntheticEmbeddingModel::Build(
      data::DomainClusters(data::TvDomain()),
      {.dimension = 16,
       .seed = 56,
       .oov_policy = embedding::OovPolicy::kHashedVector});
  bench::CheckOk(model_or.status(), "SyntheticEmbeddingModel::Build");
  const auto model = std::move(model_or).value();

  features::FeaturePipeline pipeline(&model, {});
  const std::vector<data::PropertyPair> pairs = dataset.AllCrossSourcePairs();

  std::vector<features::PropertyFeatures> properties;
  std::vector<std::string> values;
  for (size_t rep = 0; rep < shape.repetitions; ++rep) {
    properties.clear();
    for (data::PropertyId id = 0; id < dataset.property_count(); ++id) {
      values.clear();
      for (const data::InstanceValue& instance : dataset.instances(id)) {
        values.push_back(instance.value);
      }
      properties.push_back(
          pipeline.ComputeProperty(dataset.property(id).name, values));
    }
    std::vector<const features::PropertyFeatures*> lhs;
    std::vector<const features::PropertyFeatures*> rhs;
    for (const data::PropertyPair& pair : pairs) {
      lhs.push_back(&properties[pair.a]);
      rhs.push_back(&properties[pair.b]);
    }
    pipeline.BuildDesignMatrix(lhs, rhs, {});
  }

  std::printf("{\"benchmark\":\"feature_stage\",\"properties\":%zu,"
              "\"pairs\":%zu,\"repetitions\":%zu,\"embedding_dim\":%zu,"
              "\"threads\":%zu,\"stages\":[",
              dataset.property_count(), pairs.size(), shape.repetitions,
              model.dimension(), bench::BenchThreads());
  const std::vector<features::StageTiming> timings = pipeline.StageTimings();
  std::string stages = "[";
  for (size_t i = 0; i < timings.size(); ++i) {
    const features::StageTiming& timing = timings[i];
    const std::string cell = StrFormat(
        "{\"name\":\"%s\",\"version\":%d,"
        "\"property_calls\":%llu,\"ns_per_property\":%.1f,"
        "\"pair_calls\":%llu,\"ns_per_pair\":%.1f}",
        timing.name.c_str(), timing.version,
        static_cast<unsigned long long>(timing.property_calls),
        PerCall(timing.property_ns, timing.property_calls),
        static_cast<unsigned long long>(timing.pair_calls),
        PerCall(timing.pair_ns, timing.pair_calls));
    std::printf("%s%s", i == 0 ? "" : ",", cell.c_str());
    if (i > 0) stages.push_back(',');
    stages += cell;
  }
  stages.push_back(']');
  std::printf("]}\n");

  bench::JsonReport report("feature_stage");
  report.Metric("properties", dataset.property_count());
  report.Metric("pairs", pairs.size());
  report.Metric("repetitions", shape.repetitions);
  report.Metric("embedding_dim", model.dimension());
  report.RawMetric("stages", stages);
  bench::WriteJsonReport(report);
  return 0;
}
