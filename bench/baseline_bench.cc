// Reproduces the paper's baseline comparison in isolation (§V-C,
// observation 1): the unsupervised matchers reach high precision but
// struggle to reach comparable recall, while LEAPME balances both.
// One row per (dataset, matcher) at 80% training.
//
// Environment knobs: LEAPME_SCALE, LEAPME_BASELINE_REPS (default 2).

#include <cstdio>
#include <memory>

#include "baselines/aml.h"
#include "baselines/fca_map.h"
#include "baselines/lsh.h"
#include "baselines/nezhadi.h"
#include "baselines/semprop.h"
#include "bench/bench_util.h"
#include "eval/report.h"

namespace {

using namespace leapme;

struct NamedFactory {
  const char* name;
  eval::MatcherFactory factory;
};

}  // namespace

int main() {
  const auto scale = bench::ScaleFromEnv();
  eval::EvaluationOptions options;
  options.train_fraction = 0.8;
  options.repetitions =
      static_cast<size_t>(eval::EnvInt("LEAPME_BASELINE_REPS", 2));

  const NamedFactory matchers[] = {
      {"LEAPME", bench::LeapmeFactory({}, "LEAPME")},
      {"Nezhadi",
       [](const embedding::EmbeddingModel&)
           -> std::unique_ptr<baselines::PairMatcher> {
         return std::make_unique<baselines::NezhadiMatcher>();
       }},
      {"AML",
       [](const embedding::EmbeddingModel&)
           -> std::unique_ptr<baselines::PairMatcher> {
         return std::make_unique<baselines::AmlMatcher>();
       }},
      {"FCA-Map",
       [](const embedding::EmbeddingModel&)
           -> std::unique_ptr<baselines::PairMatcher> {
         return std::make_unique<baselines::FcaMapMatcher>();
       }},
      {"SemProp",
       [](const embedding::EmbeddingModel& model)
           -> std::unique_ptr<baselines::PairMatcher> {
         return std::make_unique<baselines::SemPropMatcher>(&model);
       }},
      {"LSH",
       [](const embedding::EmbeddingModel&)
           -> std::unique_ptr<baselines::PairMatcher> {
         return std::make_unique<baselines::LshMatcher>();
       }},
  };

  // Build every dataset up front, then fan the independent (dataset,
  // matcher) cells out across the thread pool. Outcomes come back in task
  // order and each cell is internally seeded, so the table is identical
  // to the former sequential double loop.
  std::vector<eval::EvalDataset> datasets;
  std::vector<std::string> dataset_names;
  for (const auto& spec : eval::DefaultDatasetSpecs(scale)) {
    auto eval_dataset = eval::BuildEvalDataset(spec);
    bench::CheckOk(eval_dataset.status(), "BuildEvalDataset");
    datasets.push_back(std::move(*eval_dataset));
    dataset_names.push_back(spec.name);
  }
  std::vector<eval::EvaluationTask> tasks;
  for (size_t d = 0; d < datasets.size(); ++d) {
    for (const NamedFactory& matcher : matchers) {
      eval::EvaluationTask task;
      task.dataset_name = dataset_names[d];
      task.matcher_name = matcher.name;
      task.dataset = &datasets[d];
      task.factory = matcher.factory;
      task.options = options;
      tasks.push_back(std::move(task));
    }
  }
  auto outcomes = eval::RunEvaluations(tasks, bench::BenchThreads());
  bench::CheckOk(outcomes.status(), "RunEvaluations");

  eval::ResultsTable table;
  for (const eval::EvaluationOutcome& outcome : *outcomes) {
    table.AddResult("Baselines (80% training)", outcome.dataset_name,
                    outcome.matcher_name, outcome.result.mean);
  }
  std::fprintf(stderr, "[baselines] %zu evaluations on %zu threads\n",
               outcomes->size(), bench::BenchThreads());

  std::printf("Baseline comparison (paper §V-C observation 1)\n\n%s\n",
              table.Render().c_str());
  std::printf(
      "expected shape: AML and FCA-Map have precision near 1.0 with much\n"
      "lower recall; SemProp and LSH trade precision for recall; LEAPME\n"
      "has the best F1 on every dataset.\n");

  bench::JsonReport report("baselines");
  report.Metric("evaluations", outcomes->size());
  report.RawMetric("rows", table.RenderJsonRows());
  bench::WriteJsonReport(report);
  return 0;
}
