// Scalability extension: candidate blocking for the quadratic multi-source
// pair space. Reports, per dataset and blocker, the reduction ratio and
// pair completeness, and the end-to-end LEAPME quality when only blocked
// candidates are scored (non-candidates count as non-matches).
//
// Environment knobs: LEAPME_SCALE.

#include <algorithm>
#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "blocking/blocker.h"
#include "data/splitting.h"
#include "ml/metrics.h"

namespace {

using namespace leapme;

// Pair-level quality when the matcher scores only `candidates` of the test
// pairs and everything else defaults to non-match.
ml::MatchQuality BlockedQuality(
    core::LeapmeMatcher& matcher,
    const std::vector<data::LabeledPair>& test_pairs,
    const std::set<std::pair<data::PropertyId, data::PropertyId>>&
        candidate_set) {
  std::vector<data::PropertyPair> to_score;
  std::vector<size_t> score_index(test_pairs.size(), SIZE_MAX);
  for (size_t i = 0; i < test_pairs.size(); ++i) {
    auto key = std::make_pair(test_pairs[i].pair.a, test_pairs[i].pair.b);
    if (candidate_set.count(key) > 0) {
      score_index[i] = to_score.size();
      to_score.push_back(test_pairs[i].pair);
    }
  }
  auto decisions = matcher.ClassifyPairs(to_score);
  leapme::bench::CheckOk(decisions.status(), "ClassifyPairs");
  std::vector<int32_t> predictions(test_pairs.size(), 0);
  std::vector<int32_t> labels(test_pairs.size(), 0);
  for (size_t i = 0; i < test_pairs.size(); ++i) {
    labels[i] = test_pairs[i].label;
    if (score_index[i] != SIZE_MAX) {
      predictions[i] = (*decisions)[score_index[i]];
    }
  }
  return ml::ComputeQuality(predictions, labels);
}

}  // namespace

int main() {
  const auto scale = bench::ScaleFromEnv();
  std::printf("Candidate blocking for the quadratic pair space\n\n");
  std::printf("%-12s %-14s %10s %12s %12s   %s\n", "dataset", "blocker",
              "candidates", "completeness", "reduction", "LEAPME P/R/F1");

  std::string rows = "[";
  for (const auto& spec : eval::DefaultDatasetSpecs(scale)) {
    auto eval_dataset = eval::BuildEvalDataset(spec);
    bench::CheckOk(eval_dataset.status(), "BuildEvalDataset");
    const data::Dataset& dataset = eval_dataset->dataset;

    // Train one LEAPME matcher (80% sources).
    Rng rng(7);
    data::SourceSplit split = data::SplitSources(dataset, 0.8, rng);
    auto train =
        data::BuildTrainingPairs(dataset, split.train_sources, 2.0, rng);
    bench::CheckOk(train.status(), "BuildTrainingPairs");
    core::LeapmeMatcher matcher(eval_dataset->model.get());
    bench::CheckOk(matcher.Fit(dataset, *train), "Fit");
    std::vector<data::LabeledPair> test_pairs =
        data::BuildTestPairs(dataset, split.train_sources);

    blocking::NameTokenBlocker tokens;
    blocking::EmbeddingBlocker embeddings(eval_dataset->model.get());
    blocking::UnionBlocker both({&tokens, &embeddings});
    blocking::Blocker* blockers[] = {&tokens, &embeddings, &both};

    // Reference row: no blocking.
    {
      std::vector<data::PropertyPair> pairs;
      std::vector<int32_t> labels;
      for (const auto& labeled : test_pairs) {
        pairs.push_back(labeled.pair);
        labels.push_back(labeled.label);
      }
      auto decisions = matcher.ClassifyPairs(pairs);
      bench::CheckOk(decisions.status(), "ClassifyPairs");
      ml::MatchQuality full = ml::ComputeQuality(*decisions, labels);
      std::printf("%-12s %-14s %10zu %12s %12s   %.2f/%.2f/%.2f\n",
                  spec.name.c_str(), "(none)",
                  dataset.AllCrossSourcePairs().size(), "1.00", "0.00",
                  full.precision, full.recall, full.f1);
    }

    for (blocking::Blocker* blocker : blockers) {
      auto candidates = blocker->Candidates(dataset);
      bench::CheckOk(candidates.status(), blocker->Name().c_str());
      blocking::BlockingQuality quality =
          blocking::EvaluateBlocking(dataset, *candidates);
      std::set<std::pair<data::PropertyId, data::PropertyId>> candidate_set;
      for (const data::PropertyPair& pair : *candidates) {
        candidate_set.emplace(pair.a, pair.b);
      }
      ml::MatchQuality end_to_end =
          BlockedQuality(matcher, test_pairs, candidate_set);
      std::printf("%-12s %-14s %10zu %12.2f %12.2f   %.2f/%.2f/%.2f\n",
                  spec.name.c_str(), blocker->Name().c_str(),
                  quality.candidate_count, quality.pair_completeness,
                  quality.reduction_ratio, end_to_end.precision,
                  end_to_end.recall, end_to_end.f1);
      rows += StrFormat(
          "%s{\"dataset\":\"%s\",\"blocker\":\"%s\",\"candidates\":%zu,"
          "\"completeness\":%.4f,\"reduction\":%.4f,\"f1\":%.4f}",
          rows.size() > 1 ? "," : "", spec.name.c_str(),
          blocker->Name().c_str(), quality.candidate_count,
          quality.pair_completeness, quality.reduction_ratio,
          end_to_end.f1);
    }
  }
  rows.push_back(']');

  std::printf(
      "\nexpected shape: the union blocker keeps nearly all true matches\n"
      "(completeness ~1.0) while pruning most of the candidate space, so\n"
      "end-to-end quality stays close to the unblocked reference at a\n"
      "fraction of the scoring cost.\n");

  bench::JsonReport report("blocking");
  report.RawMetric("rows", rows);
  bench::WriteJsonReport(report);
  return 0;
}
