// Scalability extension: candidate blocking for the quadratic multi-source
// pair space, measured through the two-step CandidatePipeline. Reports, per
// dataset and blocking spec, the reduction ratio, pair completeness, the
// end-to-end LEAPME quality when only blocked candidates are scored
// (non-candidates count as non-matches), and the scoring latency next to
// the unblocked reference so the recall-vs-speedup trade is explicit.
//
// Environment knobs: LEAPME_SCALE.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "blocking/candidate_pipeline.h"
#include "data/splitting.h"
#include "ml/metrics.h"

namespace {

using namespace leapme;

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Pair-level quality when the matcher scores only `candidates` of the test
// pairs and everything else defaults to non-match. `scoring_ms` receives
// the classification time alone (blocking is timed by the caller).
ml::MatchQuality BlockedQuality(
    core::LeapmeMatcher& matcher,
    const std::vector<data::LabeledPair>& test_pairs,
    const std::set<std::pair<data::PropertyId, data::PropertyId>>&
        candidate_set,
    double* scoring_ms) {
  std::vector<data::PropertyPair> to_score;
  std::vector<size_t> score_index(test_pairs.size(), SIZE_MAX);
  for (size_t i = 0; i < test_pairs.size(); ++i) {
    auto key = std::make_pair(test_pairs[i].pair.a, test_pairs[i].pair.b);
    if (candidate_set.count(key) > 0) {
      score_index[i] = to_score.size();
      to_score.push_back(test_pairs[i].pair);
    }
  }
  const auto start = std::chrono::steady_clock::now();
  auto decisions = matcher.ClassifyPairs(to_score);
  *scoring_ms = ElapsedMs(start);
  leapme::bench::CheckOk(decisions.status(), "ClassifyPairs");
  std::vector<int32_t> predictions(test_pairs.size(), 0);
  std::vector<int32_t> labels(test_pairs.size(), 0);
  for (size_t i = 0; i < test_pairs.size(); ++i) {
    labels[i] = test_pairs[i].label;
    if (score_index[i] != SIZE_MAX) {
      predictions[i] = (*decisions)[score_index[i]];
    }
  }
  return ml::ComputeQuality(predictions, labels);
}

}  // namespace

int main() {
  const auto scale = bench::ScaleFromEnv();
  const char* kSpecs[] = {
      "all-pairs",
      "name-token",
      "embedding-lsh",
      "union(name-token,embedding-lsh)",
  };
  std::printf("Candidate blocking for the quadratic pair space\n\n");
  std::printf("%-12s %-32s %10s %12s %12s %9s   %s\n", "dataset", "blocking",
              "candidates", "completeness", "reduction", "score ms",
              "LEAPME P/R/F1");

  std::string rows = "[";
  // Acceptance metrics, taken from the cameras dataset (the paper's
  // balanced high-quality catalog and the largest pair space here).
  double union_completeness = 0.0;
  double union_reduction_factor = 0.0;
  double union_speedup = 0.0;
  for (const auto& spec : eval::DefaultDatasetSpecs(scale)) {
    auto eval_dataset = eval::BuildEvalDataset(spec);
    bench::CheckOk(eval_dataset.status(), "BuildEvalDataset");
    const data::Dataset& dataset = eval_dataset->dataset;
    const size_t total_pairs = dataset.AllCrossSourcePairs().size();

    // Train one LEAPME matcher (80% sources).
    Rng rng(7);
    data::SourceSplit split = data::SplitSources(dataset, 0.8, rng);
    auto train =
        data::BuildTrainingPairs(dataset, split.train_sources, 2.0, rng);
    bench::CheckOk(train.status(), "BuildTrainingPairs");
    core::LeapmeMatcher matcher(eval_dataset->model.get());
    bench::CheckOk(matcher.Fit(dataset, *train), "Fit");
    std::vector<data::LabeledPair> test_pairs =
        data::BuildTestPairs(dataset, split.train_sources);

    // Reference: score every test pair (the pre-pipeline behavior).
    double full_ms = 0.0;
    {
      std::vector<data::PropertyPair> pairs;
      std::vector<int32_t> labels;
      for (const auto& labeled : test_pairs) {
        pairs.push_back(labeled.pair);
        labels.push_back(labeled.label);
      }
      const auto start = std::chrono::steady_clock::now();
      auto decisions = matcher.ClassifyPairs(pairs);
      full_ms = ElapsedMs(start);
      bench::CheckOk(decisions.status(), "ClassifyPairs");
      ml::MatchQuality full = ml::ComputeQuality(*decisions, labels);
      std::printf("%-12s %-32s %10zu %12s %12s %9.1f   %.2f/%.2f/%.2f\n",
                  spec.name.c_str(), "(none)", total_pairs, "1.00", "0.00",
                  full_ms, full.precision, full.recall, full.f1);
    }

    for (const char* blocking_spec : kSpecs) {
      auto pipeline = blocking::CandidatePipeline::Parse(
          blocking_spec, eval_dataset->model.get());
      bench::CheckOk(pipeline.status(), blocking_spec);
      const auto blocking_start = std::chrono::steady_clock::now();
      auto candidates = (*pipeline)->Candidates(dataset);
      const double blocking_ms = ElapsedMs(blocking_start);
      bench::CheckOk(candidates.status(), blocking_spec);
      blocking::BlockingQuality quality =
          blocking::EvaluateBlocking(dataset, *candidates);
      std::set<std::pair<data::PropertyId, data::PropertyId>> candidate_set;
      for (const data::PropertyPair& pair : *candidates) {
        candidate_set.emplace(pair.a, pair.b);
      }
      double scoring_ms = 0.0;
      ml::MatchQuality end_to_end =
          BlockedQuality(matcher, test_pairs, candidate_set, &scoring_ms);
      std::printf("%-12s %-32s %10zu %12.2f %12.2f %9.1f   %.2f/%.2f/%.2f\n",
                  spec.name.c_str(), blocking_spec, quality.candidate_count,
                  quality.pair_completeness, quality.reduction_ratio,
                  scoring_ms, end_to_end.precision, end_to_end.recall,
                  end_to_end.f1);
      rows += StrFormat(
          "%s{\"dataset\":\"%s\",\"blocking\":\"%s\",\"candidates\":%zu,"
          "\"completeness\":%.4f,\"reduction\":%.4f,\"blocking_ms\":%.3f,"
          "\"scoring_ms\":%.3f,\"full_scoring_ms\":%.3f,\"f1\":%.4f}",
          rows.size() > 1 ? "," : "", spec.name.c_str(), blocking_spec,
          quality.candidate_count, quality.pair_completeness,
          quality.reduction_ratio, blocking_ms, scoring_ms, full_ms,
          end_to_end.f1);
      if (spec.name == "cameras" &&
          std::string_view(blocking_spec) ==
              "union(name-token,embedding-lsh)") {
        union_completeness = quality.pair_completeness;
        union_reduction_factor =
            quality.candidate_count > 0
                ? static_cast<double>(total_pairs) / quality.candidate_count
                : 0.0;
        union_speedup = scoring_ms > 0.0 ? full_ms / scoring_ms : 0.0;
      }
    }
  }
  rows.push_back(']');

  std::printf(
      "\nexpected shape: the union blocker keeps nearly all true matches\n"
      "(completeness ~1.0) while pruning most of the candidate space, so\n"
      "end-to-end quality stays close to the unblocked reference at a\n"
      "fraction of the scoring cost.\n");

  bench::JsonReport report("blocking");
  report.Metric("union_pair_completeness", union_completeness);
  report.Metric("union_candidate_reduction", union_reduction_factor);
  report.Metric("union_scoring_speedup", union_speedup);
  report.RawMetric("rows", rows);
  bench::WriteJsonReport(report);
  return 0;
}
