// Serving benchmark: throughput and latency of the online scoring path,
// in-process (MatcherService::Score, isolating the micro-batcher), over
// a loopback TCP connection (the full wire path), and as a third phase
// the same TCP load offered open-loop at a fixed rate, reporting latency
// against both the send-start and the intended-start clock so the
// coordinated-omission gap of the closed-loop phases is visible
// (DESIGN.md §15). Prints one JSON object so runs are easy to diff and
// plot.
//
// Environment knobs: LEAPME_SCALE (test | bench | paper).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "embedding/caching_model.h"
#include "embedding/synthetic_model.h"
#include "serve/json.h"
#include "serve/tcp_server.h"
#include "tools/line_client.h"
#include "workload/arrival.h"
#include "workload/latency_recorder.h"
#include "workload/open_loop.h"
#include "workload/traffic.h"

namespace {

using namespace leapme;

struct LoadShape {
  size_t sources;
  size_t entities;
  size_t clients;
  size_t requests_per_client;
  size_t pairs_per_request;
  double open_loop_duration_s;
  /// Idle keep-alive connections held open during the phase-4 run. The
  /// reactor's per-connection cost is just epoll registration + a small
  /// state struct, so a 10k fleet should leave the intended-clock p99
  /// flat relative to phase 3.
  size_t idle_fleet;
};

LoadShape ShapeFor(eval::EvalScale scale) {
  switch (scale) {
    case eval::EvalScale::kTest:
      return {3, 6, 2, 5, 4, 0.5, 64};
    case eval::EvalScale::kPaper:
      return {6, 12, 8, 200, 32, 8.0, 10000};
    default:
      return {4, 10, 8, 40, 16, 3.0, 10000};
  }
}

struct LoadResult {
  double elapsed_s = 0.0;
  workload::LatencyRecorder::Summary latency;
  uint64_t requests = 0;
  uint64_t pairs = 0;
};

/// Runs `clients` threads of `body(client_index, recorder)` recording
/// each request's latency into the shared (thread-safe) recorder.
template <typename Body>
LoadResult RunLoad(const LoadShape& shape, const Body& body) {
  workload::LatencyRecorder recorder;
  std::vector<std::thread> threads;
  const auto begin = std::chrono::steady_clock::now();
  for (size_t c = 0; c < shape.clients; ++c) {
    threads.emplace_back([&, c] { body(c, recorder); });
  }
  for (std::thread& thread : threads) thread.join();
  LoadResult result;
  result.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  result.latency = recorder.Snapshot();
  result.requests = result.latency.count;
  result.pairs = result.requests * shape.pairs_per_request;
  return result;
}

void AppendSummary(std::string* out,
                   const workload::LatencyRecorder::Summary& summary) {
  *out += "\"latency_p50_us\":" + serve::FormatJsonDouble(summary.p50_us) +
          ",\"latency_p95_us\":" + serve::FormatJsonDouble(summary.p95_us) +
          ",\"latency_p99_us\":" + serve::FormatJsonDouble(summary.p99_us) +
          ",\"latency_p999_us\":" +
          serve::FormatJsonDouble(summary.p999_us);
}

void AppendLoadResult(std::string* out, const char* key,
                      const LoadResult& result) {
  *out += std::string("\"") + key + "\":{\"requests\":" +
          std::to_string(result.requests) +
          ",\"pairs\":" + std::to_string(result.pairs) + ",\"elapsed_s\":" +
          serve::FormatJsonDouble(result.elapsed_s) + ",\"pairs_per_sec\":" +
          serve::FormatJsonDouble(
              result.elapsed_s > 0.0
                  ? static_cast<double>(result.pairs) / result.elapsed_s
                  : 0.0) +
          ",";
  AppendSummary(out, result.latency);
  *out += "}";
}

serve::PropertySpec SpecOf(const data::Dataset& dataset,
                           data::PropertyId id) {
  serve::PropertySpec spec;
  spec.name = dataset.property(id).name;
  for (const auto& instance : dataset.instances(id)) {
    spec.values.push_back(instance.value);
  }
  return spec;
}

std::string SpecJson(const serve::PropertySpec& spec) {
  std::string out = "{\"name\":";
  serve::AppendJsonString(&out, spec.name);
  out += ",\"values\":[";
  for (size_t i = 0; i < spec.values.size(); ++i) {
    if (i > 0) out += ',';
    serve::AppendJsonString(&out, spec.values[i]);
  }
  out += "]}";
  return out;
}

}  // namespace

int main() {
  LoadShape shape = ShapeFor(bench::ScaleFromEnv());
  // Concurrency override for before/after comparisons at a pinned client
  // count (e.g. the 64-client cache-contention runs), independent of the
  // LEAPME_SCALE shape.
  if (const char* clients_env = std::getenv("LEAPME_SERVE_CLIENTS");
      clients_env != nullptr && *clients_env != '\0') {
    const long parsed = std::strtol(clients_env, nullptr, 10);
    if (parsed > 0 && parsed <= 4096) {
      shape.clients = static_cast<size_t>(parsed);
    }
  }

  data::GeneratorOptions generator;
  generator.num_sources = shape.sources;
  generator.min_entities_per_source = shape.entities;
  generator.max_entities_per_source = shape.entities;
  generator.seed = 91;
  auto dataset = data::GenerateCatalog(data::TvDomain(), generator);
  bench::CheckOk(dataset.status(), "GenerateCatalog");

  auto base_model = embedding::SyntheticEmbeddingModel::Build(
      data::DomainClusters(data::TvDomain()),
      {.dimension = 32,
       .seed = 92,
       .oov_policy = embedding::OovPolicy::kHashedVector});
  bench::CheckOk(base_model.status(), "SyntheticEmbeddingModel::Build");
  embedding::CachingEmbeddingModel cached(&base_model.value(), 1 << 16);

  Rng rng(93);
  data::SourceSplit split = data::SplitSources(*dataset, 0.8, rng);
  auto training =
      data::BuildTrainingPairs(*dataset, split.train_sources, 2.0, rng);
  bench::CheckOk(training.status(), "BuildTrainingPairs");
  core::LeapmeMatcher matcher(&cached);
  bench::CheckOk(matcher.Fit(*dataset, *training), "Fit");

  serve::MatcherService service(&matcher, &cached);

  // Request corpus: windows over all cross-source pairs, as specs (for
  // the in-process phase) and as pre-rendered JSON lines (for TCP).
  const std::vector<data::PropertyPair> pairs =
      dataset->AllCrossSourcePairs();
  std::vector<serve::PropertySpec> specs;
  specs.reserve(dataset->property_count());
  for (data::PropertyId id = 0; id < dataset->property_count(); ++id) {
    specs.push_back(SpecOf(*dataset, id));
  }
  auto request_pairs = [&](size_t client, size_t request) {
    std::vector<serve::PropertyPairSpec> window(shape.pairs_per_request);
    const size_t start =
        (client * 131 + request * shape.pairs_per_request) % pairs.size();
    for (size_t i = 0; i < window.size(); ++i) {
      const auto& pair = pairs[(start + i) % pairs.size()];
      window[i] = {specs[pair.a], specs[pair.b]};
    }
    return window;
  };
  auto request_line = [&](size_t client, size_t request) {
    const auto window = request_pairs(client, request);
    std::string line = "{\"op\":\"score\",\"pairs\":[";
    for (size_t i = 0; i < window.size(); ++i) {
      if (i > 0) line += ',';
      line += "{\"a\":" + SpecJson(window[i].a) +
              ",\"b\":" + SpecJson(window[i].b) + "}";
    }
    line += "]}";
    return line;
  };

  // Phase 1: straight into the micro-batcher, no sockets.
  LoadResult in_process = RunLoad(
      shape, [&](size_t client, workload::LatencyRecorder& recorder) {
        for (size_t request = 0; request < shape.requests_per_client;
             ++request) {
          const auto window = request_pairs(client, request);
          const auto begin = std::chrono::steady_clock::now();
          auto scores = service.Score(window);
          bench::CheckOk(scores.status(), "MatcherService::Score");
          recorder.RecordNanos(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - begin)
                  .count()));
        }
      });

  // Phase 2: the same load through the TCP front end on loopback. The
  // deep backlog is for phase 4, whose connect waves arrive faster than
  // single accepts.
  serve::TcpServer server(&service, {.port = 0, .backlog = 4096});
  bench::CheckOk(server.Start(), "TcpServer::Start");
  if (!tools::WaitForServerReady("127.0.0.1", server.port())) {
    std::fprintf(stderr, "server never reported ready\n");
    std::exit(1);
  }
  LoadResult tcp = RunLoad(
      shape, [&](size_t client, workload::LatencyRecorder& recorder) {
        tools::LineClient connection("127.0.0.1", server.port());
        if (!connection.connected()) {
          std::fprintf(stderr, "cannot connect to 127.0.0.1:%d\n",
                       server.port());
          std::exit(1);
        }
        for (size_t request = 0; request < shape.requests_per_client;
             ++request) {
          const std::string line = request_line(client, request);
          std::string response;
          const auto begin = std::chrono::steady_clock::now();
          if (!connection.RoundTrip(line, &response)) {
            std::fprintf(stderr, "connection lost mid-benchmark\n");
            std::exit(1);
          }
          recorder.RecordNanos(static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - begin)
                  .count()));
        }
      });

  // Phase 3: open loop. The offered rate is set from the measured
  // closed-loop throughput (at 75%, so a healthy server keeps up), and
  // latency is recorded against both clocks: `service` matches what the
  // closed-loop phases report, `intended` additionally charges the time
  // requests spent waiting behind a busy server — the difference IS the
  // coordinated omission the closed loop hides.
  double closed_rps =
      tcp.elapsed_s > 0.0
          ? static_cast<double>(tcp.requests) / tcp.elapsed_s
          : 50.0;
  // Pin the open-loop offered rate for before/after comparisons: the
  // default derives it from this run's measured closed-loop throughput,
  // which makes intended-clock percentiles incomparable across builds.
  if (const char* rps_env = std::getenv("LEAPME_SERVE_RPS");
      rps_env != nullptr && *rps_env != '\0') {
    const double parsed = std::strtod(rps_env, nullptr);
    if (parsed > 0.0) closed_rps = parsed;
  }
  workload::ArrivalOptions arrival;
  arrival.target_rps = std::max(20.0, 0.75 * closed_rps);
  arrival.duration_s = shape.open_loop_duration_s;
  arrival.seed = 94;
  auto schedule = workload::ArrivalSchedule::Build(arrival);
  bench::CheckOk(schedule.status(), "ArrivalSchedule::Build");
  workload::OpenLoopResult open_loop;
  const int port = server.port();
  workload::RunOpenLoop(
      *schedule, static_cast<unsigned>(shape.clients),
      [&](size_t event) {
        thread_local std::unique_ptr<tools::LineClient> connection;
        if (connection == nullptr || !connection->connected()) {
          connection =
              std::make_unique<tools::LineClient>("127.0.0.1", port);
        }
        if (!connection->connected()) return workload::Outcome::kError;
        std::string response;
        if (!connection->RoundTrip(request_line(event % shape.clients,
                                                event),
                                   &response)) {
          connection.reset();
          return workload::Outcome::kError;
        }
        return response.find("\"ok\":true") != std::string::npos
                   ? workload::Outcome::kOk
                   : workload::Outcome::kError;
      },
      &open_loop);

  // Phase 4: open-loop Zipf traffic near saturation, underneath a large
  // fleet of idle keep-alive connections. The fleet's client half lives
  // in a forked child (ForkedIdleFleet) so it does not share this
  // process's RLIMIT_NOFILE budget with the server-side fds; when even
  // the server half does not fit the limit, the fleet shrinks to what
  // the budget allows and the achieved size is reported.
  size_t fleet_target = shape.idle_fleet;
  {
    const size_t need = shape.idle_fleet + 2048;
    const size_t available = tools::RaiseFdLimit(need);
    if (available < need) {
      fleet_target =
          available > 4096 ? available - 2048 : std::min<size_t>(64, fleet_target);
      std::fprintf(stderr,
                   "idle fleet capped at %zu connections "
                   "(RLIMIT_NOFILE allows %zu fds)\n",
                   fleet_target, available);
    }
  }
  tools::ForkedIdleFleet fleet("127.0.0.1", port, fleet_target,
                               /*timeout_ms=*/30000);

  // Zipf-skewed pair draws: the hot head hammers the serve-side property
  // cache the way web-shaped traffic would.
  auto sampler = workload::RequestSampler::Build(
      {.catalog_size = dataset->property_count(), .zipf_s = 1.0, .seed = 95});
  bench::CheckOk(sampler.status(), "RequestSampler::Build");
  auto zipf_line = [&](size_t event) {
    std::string line = "{\"op\":\"score\",\"pairs\":[";
    for (size_t i = 0; i < shape.pairs_per_request; ++i) {
      const size_t draw = event * shape.pairs_per_request + i;
      if (i > 0) line += ',';
      line += "{\"a\":" + SpecJson(specs[sampler->PropertyAt(draw)]) +
              ",\"b\":" + SpecJson(specs[sampler->PairPropertyAt(draw)]) +
              "}";
    }
    line += "]}";
    return line;
  };

  workload::ArrivalOptions fleet_arrival;
  fleet_arrival.target_rps = std::max(20.0, 0.9 * closed_rps);
  fleet_arrival.duration_s = shape.open_loop_duration_s;
  fleet_arrival.seed = 96;
  auto fleet_schedule = workload::ArrivalSchedule::Build(fleet_arrival);
  bench::CheckOk(fleet_schedule.status(), "ArrivalSchedule::Build");
  workload::OpenLoopResult fleet_loop;
  workload::RunOpenLoop(
      *fleet_schedule, static_cast<unsigned>(shape.clients),
      [&](size_t event) {
        thread_local std::unique_ptr<tools::LineClient> connection;
        if (connection == nullptr || !connection->connected()) {
          connection =
              std::make_unique<tools::LineClient>("127.0.0.1", port);
        }
        if (!connection->connected()) return workload::Outcome::kError;
        std::string response;
        if (!connection->RoundTrip(zipf_line(event), &response)) {
          connection.reset();
          return workload::Outcome::kError;
        }
        return response.find("\"ok\":true") != std::string::npos
                   ? workload::Outcome::kOk
                   : workload::Outcome::kError;
      },
      &fleet_loop);

  // Snapshot while the fleet is still connected, so connections_active
  // and the reactor gauges reflect the 10k-idle steady state.
  const serve::ServiceStats stats = service.Snapshot();
  server.Stop();

  const workload::LatencyRecorder::Summary open_intended =
      open_loop.intended.Snapshot();
  const workload::LatencyRecorder::Summary open_service =
      open_loop.service.Snapshot();
  const workload::LatencyRecorder::Summary fleet_intended =
      fleet_loop.intended.Snapshot();
  const workload::LatencyRecorder::Summary fleet_service =
      fleet_loop.service.Snapshot();

  std::string out = "{\"config\":{\"threads\":" +
                    std::to_string(bench::BenchThreads()) +
                    ",\"clients\":" + std::to_string(shape.clients) +
                    ",\"requests_per_client\":" +
                    std::to_string(shape.requests_per_client) +
                    ",\"pairs_per_request\":" +
                    std::to_string(shape.pairs_per_request) +
                    ",\"properties\":" +
                    std::to_string(dataset->property_count()) + "},";
  AppendLoadResult(&out, "in_process", in_process);
  out += ',';
  AppendLoadResult(&out, "tcp", tcp);
  out += ",\"open_loop\":{\"target_rps\":" +
         serve::FormatJsonDouble(arrival.target_rps) +
         ",\"sent\":" + std::to_string(open_loop.sent) +
         ",\"errors\":" + std::to_string(open_loop.errors) +
         ",\"late_starts\":" + std::to_string(open_loop.late_starts) +
         ",\"service\":{";
  AppendSummary(&out, open_service);
  out += "},\"intended\":{";
  AppendSummary(&out, open_intended);
  out += "}}";
  out += ",\"idle_fleet\":{\"connections\":" +
         std::to_string(fleet.connected()) +
         ",\"target_connections\":" + std::to_string(fleet_target) +
         ",\"target_rps\":" +
         serve::FormatJsonDouble(fleet_arrival.target_rps) +
         ",\"sent\":" + std::to_string(fleet_loop.sent) +
         ",\"errors\":" + std::to_string(fleet_loop.errors) +
         ",\"late_starts\":" + std::to_string(fleet_loop.late_starts) +
         ",\"service\":{";
  AppendSummary(&out, fleet_service);
  out += "},\"intended\":{";
  AppendSummary(&out, fleet_intended);
  out += "}}";
  out += ",\"reactor\":{\"io_backend\":";
  serve::AppendJsonString(&out, stats.io_backend);
  out += ",\"event_loop_threads\":" +
         std::to_string(stats.event_loop_threads) +
         ",\"epoll_wakeups\":" + std::to_string(stats.epoll_wakeups) +
         ",\"writable_backlog_bytes\":" +
         std::to_string(stats.writable_backlog_bytes) +
         ",\"connections_active\":" +
         std::to_string(stats.connections_active) + "}";
  out += ",\"service\":{\"pairs_scored\":" +
         std::to_string(stats.pairs_scored) +
         ",\"batches\":" + std::to_string(stats.batches) +
         ",\"mean_batch_size\":" +
         serve::FormatJsonDouble(
             stats.batches > 0
                 ? static_cast<double>(stats.pairs_scored) /
                       static_cast<double>(stats.batches)
                 : 0.0) +
         ",\"property_cache_hits\":" +
         std::to_string(stats.property_cache_hits) +
         ",\"property_cache_misses\":" +
         std::to_string(stats.property_cache_misses) +
         ",\"embedding_cache_hits\":" +
         std::to_string(stats.embedding_cache_hits) +
         ",\"embedding_cache_misses\":" +
         std::to_string(stats.embedding_cache_misses) +
         ",\"embedding_cache_evictions\":" +
         std::to_string(stats.embedding_cache_evictions) +
         ",\"property_cache_evictions\":" +
         std::to_string(stats.property_cache_evictions) +
         ",\"cache_shards\":" + std::to_string(stats.cache_shards) +
         ",\"embedding_cache_max_probe\":" +
         std::to_string(stats.embedding_cache_max_probe) +
         ",\"property_cache_max_probe\":" +
         std::to_string(stats.property_cache_max_probe) + "}}";
  std::printf("%s\n", out.c_str());

  bench::JsonReport report("serve");
  report.Metric("clients", shape.clients);
  report.Metric("requests_per_client", shape.requests_per_client);
  report.Metric("pairs_per_request", shape.pairs_per_request);
  auto load_fragment = [](const LoadResult& result) {
    std::string fragment;
    AppendLoadResult(&fragment, "r", result);
    // AppendLoadResult emits `"r":{...}`; keep just the object.
    return fragment.substr(fragment.find('{'));
  };
  report.RawMetric("in_process", load_fragment(in_process));
  report.RawMetric("tcp", load_fragment(tcp));
  auto summary_fragment =
      [](const workload::LatencyRecorder::Summary& summary) {
        std::string fragment = "{";
        AppendSummary(&fragment, summary);
        fragment += "}";
        return fragment;
      };
  report.RawMetric("open_loop_service", summary_fragment(open_service));
  report.RawMetric("open_loop_intended", summary_fragment(open_intended));
  report.Metric("open_loop_sent", open_loop.sent);
  report.Metric("open_loop_errors", open_loop.errors);
  report.Metric("idle_fleet_connections", fleet.connected());
  report.Metric("idle_fleet_target", static_cast<uint64_t>(fleet_target));
  report.RawMetric("idle_fleet_service", summary_fragment(fleet_service));
  report.RawMetric("idle_fleet_intended", summary_fragment(fleet_intended));
  report.Metric("idle_fleet_sent", fleet_loop.sent);
  report.Metric("idle_fleet_errors", fleet_loop.errors);
  std::string backend_json;
  serve::AppendJsonString(&backend_json, stats.io_backend);
  report.RawMetric("io_backend", backend_json);
  report.Metric("event_loop_threads", stats.event_loop_threads);
  report.Metric("epoll_wakeups", stats.epoll_wakeups);
  report.Metric("writable_backlog_bytes", stats.writable_backlog_bytes);
  report.Metric("connections_active", stats.connections_active);
  report.Metric("pairs_scored", stats.pairs_scored);
  report.Metric("batches", stats.batches);
  report.Metric("embedding_cache_hits", stats.embedding_cache_hits);
  report.Metric("embedding_cache_misses", stats.embedding_cache_misses);
  report.Metric("embedding_cache_evictions", stats.embedding_cache_evictions);
  report.Metric("embedding_cache_max_probe", stats.embedding_cache_max_probe);
  report.Metric("property_cache_hits", stats.property_cache_hits);
  report.Metric("property_cache_misses", stats.property_cache_misses);
  report.Metric("property_cache_evictions", stats.property_cache_evictions);
  report.Metric("property_cache_max_probe", stats.property_cache_max_probe);
  report.Metric("cache_shards", stats.cache_shards);
  bench::WriteJsonReport(report);
  return 0;
}
