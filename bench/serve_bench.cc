// Serving benchmark: throughput and latency of the online scoring path,
// both in-process (MatcherService::Score, isolating the micro-batcher)
// and over a loopback TCP connection (the full wire path). Prints one
// JSON object so runs are easy to diff and plot.
//
// Environment knobs: LEAPME_SCALE (test | bench | paper).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "embedding/caching_model.h"
#include "embedding/synthetic_model.h"
#include "serve/json.h"
#include "serve/tcp_server.h"

namespace {

using namespace leapme;

struct LoadShape {
  size_t sources;
  size_t entities;
  size_t clients;
  size_t requests_per_client;
  size_t pairs_per_request;
};

LoadShape ShapeFor(eval::EvalScale scale) {
  switch (scale) {
    case eval::EvalScale::kTest:
      return {3, 6, 2, 5, 4};
    case eval::EvalScale::kPaper:
      return {6, 12, 8, 200, 32};
    default:
      return {4, 10, 8, 40, 16};
  }
}

struct LoadResult {
  double elapsed_s = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  uint64_t requests = 0;
  uint64_t pairs = 0;
};

double Percentile(const std::vector<double>& sorted, double quantile) {
  if (sorted.empty()) return 0.0;
  const size_t rank =
      static_cast<size_t>(quantile * static_cast<double>(sorted.size()));
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// Runs `clients` threads of `body(client_index)` (which returns that
/// client's per-request latencies in microseconds) and aggregates.
template <typename Body>
LoadResult RunLoad(const LoadShape& shape, const Body& body) {
  std::vector<std::thread> threads;
  std::vector<std::vector<double>> latencies(shape.clients);
  const auto begin = std::chrono::steady_clock::now();
  for (size_t c = 0; c < shape.clients; ++c) {
    threads.emplace_back([&, c] { latencies[c] = body(c); });
  }
  for (std::thread& thread : threads) thread.join();
  LoadResult result;
  result.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  std::vector<double> all;
  for (const auto& slice : latencies) {
    all.insert(all.end(), slice.begin(), slice.end());
  }
  std::sort(all.begin(), all.end());
  result.requests = all.size();
  result.pairs = all.size() * shape.pairs_per_request;
  result.p50_us = Percentile(all, 0.50);
  result.p95_us = Percentile(all, 0.95);
  result.p99_us = Percentile(all, 0.99);
  return result;
}

void AppendLoadResult(std::string* out, const char* key,
                      const LoadResult& result) {
  *out += std::string("\"") + key + "\":{\"requests\":" +
          std::to_string(result.requests) +
          ",\"pairs\":" + std::to_string(result.pairs) + ",\"elapsed_s\":" +
          serve::FormatJsonDouble(result.elapsed_s) + ",\"pairs_per_sec\":" +
          serve::FormatJsonDouble(
              result.elapsed_s > 0.0
                  ? static_cast<double>(result.pairs) / result.elapsed_s
                  : 0.0) +
          ",\"latency_p50_us\":" + serve::FormatJsonDouble(result.p50_us) +
          ",\"latency_p95_us\":" + serve::FormatJsonDouble(result.p95_us) +
          ",\"latency_p99_us\":" + serve::FormatJsonDouble(result.p99_us) +
          "}";
}

/// Minimal blocking line client for the TCP phase.
class LineClient {
 public:
  explicit LineClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_in address = {};
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                  sizeof(address)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return fd_ >= 0; }

  bool RoundTrip(const std::string& line, std::string* response) {
    std::string framed = line + "\n";
    size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    while (true) {
      const size_t newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        *response = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

serve::PropertySpec SpecOf(const data::Dataset& dataset,
                           data::PropertyId id) {
  serve::PropertySpec spec;
  spec.name = dataset.property(id).name;
  for (const auto& instance : dataset.instances(id)) {
    spec.values.push_back(instance.value);
  }
  return spec;
}

std::string SpecJson(const serve::PropertySpec& spec) {
  std::string out = "{\"name\":";
  serve::AppendJsonString(&out, spec.name);
  out += ",\"values\":[";
  for (size_t i = 0; i < spec.values.size(); ++i) {
    if (i > 0) out += ',';
    serve::AppendJsonString(&out, spec.values[i]);
  }
  out += "]}";
  return out;
}

}  // namespace

int main() {
  const LoadShape shape = ShapeFor(bench::ScaleFromEnv());

  data::GeneratorOptions generator;
  generator.num_sources = shape.sources;
  generator.min_entities_per_source = shape.entities;
  generator.max_entities_per_source = shape.entities;
  generator.seed = 91;
  auto dataset = data::GenerateCatalog(data::TvDomain(), generator);
  bench::CheckOk(dataset.status(), "GenerateCatalog");

  auto base_model = embedding::SyntheticEmbeddingModel::Build(
      data::DomainClusters(data::TvDomain()),
      {.dimension = 32,
       .seed = 92,
       .oov_policy = embedding::OovPolicy::kHashedVector});
  bench::CheckOk(base_model.status(), "SyntheticEmbeddingModel::Build");
  embedding::CachingEmbeddingModel cached(&base_model.value(), 1 << 16);

  Rng rng(93);
  data::SourceSplit split = data::SplitSources(*dataset, 0.8, rng);
  auto training =
      data::BuildTrainingPairs(*dataset, split.train_sources, 2.0, rng);
  bench::CheckOk(training.status(), "BuildTrainingPairs");
  core::LeapmeMatcher matcher(&cached);
  bench::CheckOk(matcher.Fit(*dataset, *training), "Fit");

  serve::MatcherService service(&matcher, &cached);

  // Request corpus: windows over all cross-source pairs, as specs (for
  // the in-process phase) and as pre-rendered JSON lines (for TCP).
  const std::vector<data::PropertyPair> pairs =
      dataset->AllCrossSourcePairs();
  std::vector<serve::PropertySpec> specs;
  specs.reserve(dataset->property_count());
  for (data::PropertyId id = 0; id < dataset->property_count(); ++id) {
    specs.push_back(SpecOf(*dataset, id));
  }
  auto request_pairs = [&](size_t client, size_t request) {
    std::vector<serve::PropertyPairSpec> window(shape.pairs_per_request);
    const size_t start =
        (client * 131 + request * shape.pairs_per_request) % pairs.size();
    for (size_t i = 0; i < window.size(); ++i) {
      const auto& pair = pairs[(start + i) % pairs.size()];
      window[i] = {specs[pair.a], specs[pair.b]};
    }
    return window;
  };

  // Phase 1: straight into the micro-batcher, no sockets.
  LoadResult in_process = RunLoad(shape, [&](size_t client) {
    std::vector<double> latencies;
    for (size_t request = 0; request < shape.requests_per_client;
         ++request) {
      const auto window = request_pairs(client, request);
      const auto begin = std::chrono::steady_clock::now();
      auto scores = service.Score(window);
      bench::CheckOk(scores.status(), "MatcherService::Score");
      latencies.push_back(std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - begin)
                              .count());
    }
    return latencies;
  });

  // Phase 2: the same load through the TCP front end on loopback.
  serve::TcpServer server(&service, {.port = 0});
  bench::CheckOk(server.Start(), "TcpServer::Start");
  LoadResult tcp = RunLoad(shape, [&](size_t client) {
    std::vector<double> latencies;
    LineClient connection(server.port());
    if (!connection.connected()) {
      std::fprintf(stderr, "cannot connect to 127.0.0.1:%d\n",
                   server.port());
      std::exit(1);
    }
    for (size_t request = 0; request < shape.requests_per_client;
         ++request) {
      const auto window = request_pairs(client, request);
      std::string line = "{\"op\":\"score\",\"pairs\":[";
      for (size_t i = 0; i < window.size(); ++i) {
        if (i > 0) line += ',';
        line += "{\"a\":" + SpecJson(window[i].a) +
                ",\"b\":" + SpecJson(window[i].b) + "}";
      }
      line += "]}";
      std::string response;
      const auto begin = std::chrono::steady_clock::now();
      if (!connection.RoundTrip(line, &response)) {
        std::fprintf(stderr, "connection lost mid-benchmark\n");
        std::exit(1);
      }
      latencies.push_back(std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - begin)
                              .count());
    }
    return latencies;
  });
  const serve::ServiceStats stats = service.Snapshot();
  server.Stop();

  std::string out = "{\"config\":{\"threads\":" +
                    std::to_string(bench::BenchThreads()) +
                    ",\"clients\":" + std::to_string(shape.clients) +
                    ",\"requests_per_client\":" +
                    std::to_string(shape.requests_per_client) +
                    ",\"pairs_per_request\":" +
                    std::to_string(shape.pairs_per_request) +
                    ",\"properties\":" +
                    std::to_string(dataset->property_count()) + "},";
  AppendLoadResult(&out, "in_process", in_process);
  out += ',';
  AppendLoadResult(&out, "tcp", tcp);
  out += ",\"service\":{\"pairs_scored\":" +
         std::to_string(stats.pairs_scored) +
         ",\"batches\":" + std::to_string(stats.batches) +
         ",\"mean_batch_size\":" +
         serve::FormatJsonDouble(
             stats.batches > 0
                 ? static_cast<double>(stats.pairs_scored) /
                       static_cast<double>(stats.batches)
                 : 0.0) +
         ",\"property_cache_hits\":" +
         std::to_string(stats.property_cache_hits) +
         ",\"property_cache_misses\":" +
         std::to_string(stats.property_cache_misses) +
         ",\"embedding_cache_hits\":" +
         std::to_string(stats.embedding_cache_hits) +
         ",\"embedding_cache_misses\":" +
         std::to_string(stats.embedding_cache_misses) + "}}";
  std::printf("%s\n", out.c_str());

  bench::JsonReport report("serve");
  report.Metric("clients", shape.clients);
  report.Metric("requests_per_client", shape.requests_per_client);
  report.Metric("pairs_per_request", shape.pairs_per_request);
  auto load_fragment = [](const LoadResult& result) {
    std::string fragment;
    AppendLoadResult(&fragment, "r", result);
    // AppendLoadResult emits `"r":{...}`; keep just the object.
    return fragment.substr(fragment.find('{'));
  };
  report.RawMetric("in_process", load_fragment(in_process));
  report.RawMetric("tcp", load_fragment(tcp));
  report.Metric("pairs_scored", stats.pairs_scored);
  report.Metric("batches", stats.batches);
  bench::WriteJsonReport(report);
  return 0;
}
