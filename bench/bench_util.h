#ifndef LEAPME_BENCH_BENCH_UTIL_H_
#define LEAPME_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/parallel.h"
#include "core/leapme.h"
#include "eval/experiment.h"
#include "eval/leapme_adapter.h"

namespace leapme::bench {

/// Thread count the benchmark binaries report and fan out with:
/// $LEAPME_BENCH_THREADS when set, otherwise the global pool width
/// (--threads / LEAPME_THREADS / hardware concurrency).
inline size_t BenchThreads() {
  const char* value = std::getenv("LEAPME_BENCH_THREADS");
  if (value != nullptr && *value != '\0') {
    long parsed = std::strtol(value, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return GlobalThreadCount();
}

/// Reads the evaluation scale from $LEAPME_SCALE ("test" | "bench" |
/// "paper"); defaults to the CI-sized bench scale.
inline eval::EvalScale ScaleFromEnv() {
  const char* value = std::getenv("LEAPME_SCALE");
  if (value == nullptr) return eval::EvalScale::kBench;
  if (std::strcmp(value, "paper") == 0) return eval::EvalScale::kPaper;
  if (std::strcmp(value, "test") == 0) return eval::EvalScale::kTest;
  return eval::EvalScale::kBench;
}

/// Factory for a LEAPME variant under a feature configuration.
inline eval::MatcherFactory LeapmeFactory(features::FeatureConfig config,
                                          std::string display_name) {
  return [config, display_name](const embedding::EmbeddingModel& model)
             -> std::unique_ptr<baselines::PairMatcher> {
    core::LeapmeOptions options;
    options.feature_config = config;
    return std::make_unique<eval::LeapmeAdapter>(&model, options,
                                                 display_name);
  };
}

/// Aborts with a message when `status` is not OK (benchmark binaries have
/// no caller to propagate to).
inline void CheckOk(const Status& status, const char* context) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", context, status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace leapme::bench

#endif  // LEAPME_BENCH_BENCH_UTIL_H_
