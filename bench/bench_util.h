#ifndef LEAPME_BENCH_BENCH_UTIL_H_
#define LEAPME_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/kernels/kernels.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "core/leapme.h"
#include "eval/experiment.h"
#include "eval/leapme_adapter.h"

namespace leapme::bench {

/// Thread count the benchmark binaries report and fan out with:
/// $LEAPME_BENCH_THREADS when set, otherwise the global pool width
/// (--threads / LEAPME_THREADS / hardware concurrency).
inline size_t BenchThreads() {
  const char* value = std::getenv("LEAPME_BENCH_THREADS");
  if (value != nullptr && *value != '\0') {
    long parsed = std::strtol(value, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return GlobalThreadCount();
}

/// Reads the evaluation scale from $LEAPME_SCALE ("test" | "bench" |
/// "paper"); defaults to the CI-sized bench scale.
inline eval::EvalScale ScaleFromEnv() {
  const char* value = std::getenv("LEAPME_SCALE");
  if (value == nullptr) return eval::EvalScale::kBench;
  if (std::strcmp(value, "paper") == 0) return eval::EvalScale::kPaper;
  if (std::strcmp(value, "test") == 0) return eval::EvalScale::kTest;
  return eval::EvalScale::kBench;
}

/// Factory for a LEAPME variant under a feature configuration.
inline eval::MatcherFactory LeapmeFactory(features::FeatureConfig config,
                                          std::string display_name) {
  return [config, display_name](const embedding::EmbeddingModel& model)
             -> std::unique_ptr<baselines::PairMatcher> {
    core::LeapmeOptions options;
    options.feature_config = config;
    return std::make_unique<eval::LeapmeAdapter>(&model, options,
                                                 display_name);
  };
}

/// Aborts with a message when `status` is not OK (benchmark binaries have
/// no caller to propagate to).
inline void CheckOk(const Status& status, const char* context) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", context, status.ToString().c_str());
    std::exit(1);
  }
}

/// Human-readable name of the active evaluation scale, for reports.
inline const char* ScaleName(eval::EvalScale scale) {
  switch (scale) {
    case eval::EvalScale::kTest:
      return "test";
    case eval::EvalScale::kPaper:
      return "paper";
    default:
      return "bench";
  }
}

/// Machine-readable benchmark report in the shared schema every bench
/// binary emits:
///
///   {"name":"<bench>","scale":"test|bench|paper","threads":N,
///    "kernel":"scalar|avx2","metrics":{...}}
///
/// Metrics preserve insertion order. Values are either plain numbers
/// (Metric) or pre-rendered JSON fragments (RawMetric) for nested
/// objects/arrays a binary already knows how to render.
struct JsonReport {
  explicit JsonReport(std::string benchmark_name)
      : name(std::move(benchmark_name)) {}

  void Metric(const std::string& key, double value) {
    metrics.emplace_back(key, StrFormat("%.17g", value));
  }
  void Metric(const std::string& key, uint64_t value) {
    metrics.emplace_back(
        key, StrFormat("%llu", static_cast<unsigned long long>(value)));
  }
  /// `raw_json` must already be valid JSON (object, array, string, ...).
  void RawMetric(const std::string& key, std::string raw_json) {
    metrics.emplace_back(key, std::move(raw_json));
  }

  std::string Render() const {
    std::string out = StrFormat(
        "{\"name\":\"%s\",\"scale\":\"%s\",\"threads\":%zu,"
        "\"kernel\":\"%s\",\"metrics\":{",
        name.c_str(), ScaleName(ScaleFromEnv()), BenchThreads(),
        kernels::ActiveKernelName());
    for (size_t i = 0; i < metrics.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += StrFormat("\"%s\":%s", metrics[i].first.c_str(),
                       metrics[i].second.c_str());
    }
    out += "}}";
    return out;
  }

  std::string name;
  std::vector<std::pair<std::string, std::string>> metrics;
};

/// Writes `report` to BENCH_<name>.json in $LEAPME_BENCH_DIR (or the
/// working directory) and notes the path on stderr, keeping stdout free
/// for each binary's human-oriented output. A write failure is reported
/// but not fatal: the measurements already happened.
inline void WriteJsonReport(const JsonReport& report) {
  const char* dir = std::getenv("LEAPME_BENCH_DIR");
  const std::string path =
      StrFormat("%s%sBENCH_%s.json", dir != nullptr ? dir : "",
                dir != nullptr && *dir != '\0' ? "/" : "",
                report.name.c_str());
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const std::string body = report.Render();
  std::fwrite(body.data(), 1, body.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
  std::fprintf(stderr, "report: %s\n", path.c_str());
}

}  // namespace leapme::bench

#endif  // LEAPME_BENCH_BENCH_UTIL_H_
