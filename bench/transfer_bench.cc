// The paper's transfer-learning study (§V, expanded in the arXiv
// version): train LEAPME on one product domain and apply the trained
// classifier to every other domain without target-domain labels.
// Prints the 4x4 (train domain x test domain) F1 matrix.
//
// Environment knobs: LEAPME_SCALE.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "data/splitting.h"
#include "ml/metrics.h"

namespace {

using namespace leapme;

}  // namespace

int main() {
  const auto scale = bench::ScaleFromEnv();
  auto specs = eval::DefaultDatasetSpecs(scale);

  // One embedding space spanning all four domains (as a single
  // pre-trained GloVe model would).
  std::vector<embedding::SemanticCluster> clusters;
  for (const auto& spec : specs) {
    for (auto& cluster : data::DomainClusters(*spec.domain)) {
      clusters.push_back(std::move(cluster));
    }
  }
  embedding::SyntheticModelOptions embedding_options = specs[0].embedding;
  auto model =
      embedding::SyntheticEmbeddingModel::Build(clusters, embedding_options);
  bench::CheckOk(model.status(), "embedding model");

  // Generate all four datasets.
  std::vector<data::Dataset> datasets;
  for (const auto& spec : specs) {
    auto dataset = data::GenerateCatalog(*spec.domain, spec.generator);
    bench::CheckOk(dataset.status(), "GenerateCatalog");
    datasets.push_back(std::move(dataset).value());
  }

  // Train one matcher per source domain on all its cross-source pairs.
  std::map<std::string, std::map<std::string, double>> f1;
  for (size_t train_index = 0; train_index < datasets.size();
       ++train_index) {
    const data::Dataset& train_dataset = datasets[train_index];
    Rng rng(31 + train_index);
    std::vector<data::SourceId> all_sources;
    for (data::SourceId s = 0; s < train_dataset.source_count(); ++s) {
      all_sources.push_back(s);
    }
    auto training =
        data::BuildTrainingPairs(train_dataset, all_sources, 2.0, rng);
    bench::CheckOk(training.status(), "BuildTrainingPairs");
    core::LeapmeMatcher matcher(&model.value());
    bench::CheckOk(matcher.Fit(train_dataset, *training), "Fit");

    for (size_t test_index = 0; test_index < datasets.size(); ++test_index) {
      const data::Dataset& test_dataset = datasets[test_index];
      std::vector<data::PropertyPair> pairs =
          test_dataset.AllCrossSourcePairs();
      StatusOr<std::vector<double>> scores =
          test_index == train_index
              ? matcher.ScorePairs(pairs)
              : matcher.ScorePairsOn(test_dataset, pairs);
      bench::CheckOk(scores.status(), "Score");
      std::vector<int32_t> predictions(scores->size());
      std::vector<int32_t> labels(scores->size());
      for (size_t i = 0; i < pairs.size(); ++i) {
        predictions[i] = (*scores)[i] >= 0.5 ? 1 : 0;
        labels[i] = test_dataset.IsMatch(pairs[i].a, pairs[i].b) ? 1 : 0;
      }
      f1[specs[train_index].name][specs[test_index].name] =
          ml::ComputeQuality(predictions, labels).f1;
    }
    std::fprintf(stderr, "[transfer] trained on %s\n",
                 specs[train_index].name.c_str());
  }

  std::printf("Transfer learning: F1 of train-domain row applied to "
              "test-domain column\n\n%-12s", "train\\test");
  for (const auto& spec : specs) {
    std::printf(" %-11s", spec.name.c_str());
  }
  std::printf("\n");
  for (const auto& train_spec : specs) {
    std::printf("%-12s", train_spec.name.c_str());
    for (const auto& test_spec : specs) {
      std::printf(" %-11.2f", f1[train_spec.name][test_spec.name]);
    }
    std::printf("\n");
  }
  std::printf(
      "\nnote: diagonal cells score the training domain itself (training\n"
      "pairs included), so they are optimistic; off-diagonal cells are\n"
      "true zero-label transfer. Expected shape: transfer loses some F1\n"
      "against the diagonal but stays clearly above the unsupervised\n"
      "baselines' range on most pairs.\n");

  bench::JsonReport report("transfer");
  std::string cells = "[";
  for (const auto& train_spec : specs) {
    for (const auto& test_spec : specs) {
      cells += StrFormat("%s{\"train\":\"%s\",\"test\":\"%s\",\"f1\":%.4f}",
                         cells.size() > 1 ? "," : "",
                         train_spec.name.c_str(), test_spec.name.c_str(),
                         f1[train_spec.name][test_spec.name]);
    }
  }
  cells.push_back(']');
  report.RawMetric("cells", cells);
  bench::WriteJsonReport(report);
  return 0;
}
