// Cache micro-benchmark: the sharded set-associative cache
// (common/cache) against a faithful replica of the global-mutex
// std::list LRU it replaced, at 1 and 8 threads, plus the batched
// prefetch-wave lookup path (DESIGN.md §17).
//
// Workload: a hit-dominated mix (90% lookups over a resident working
// set, 10% inserts of novel keys forcing eviction churn), the shape the
// serving path produces once the embedding / property caches are warm.
// Each value encodes its key index and every hit verifies it, so the
// benchmark double-checks correctness while it measures.
//
// Emits BENCH_cache.json:
//   lru_ops_per_sec_{1t,8t}, sharded_ops_per_sec_{1t,8t},
//   sharded_batch_ops_per_sec_{1t,8t}, speedup_{1t,8t},
//   speedup_batch_{1t,8t}
// Honors LEAPME_SCALE=test for a quick run and LEAPME_BENCH_REPEATS
// (default 5, median reported).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "common/cache/sharded_cache.h"
#include "common/rng.h"

namespace leapme::bench {
namespace {

/// Replica of the retired design (see git history of
/// embedding/caching_model.cc): one global mutex guarding an
/// std::unordered_map index into an std::list in recency order, hits
/// splicing their node to the front, overflow popping the back.
class MutexLruCache {
 public:
  explicit MutexLruCache(size_t capacity)
      : capacity_(std::max<size_t>(1, capacity)) {}

  bool Lookup(std::string_view key, uint64_t* out) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    *out = it->second->value;
    return true;
  }

  void Insert(std::string_view key, uint64_t value) {
    Entry entry;
    entry.key.assign(key);
    entry.value = value;
    std::lock_guard<std::mutex> lock(mu_);
    if (index_.find(entry.key) != index_.end()) {
      return;
    }
    lru_.push_front(std::move(entry));
    index_.emplace(lru_.front().key, lru_.begin());
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back().key);
      lru_.pop_back();
    }
  }

 private:
  struct Entry {
    std::string key;
    uint64_t value = 0;
  };
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view key) const {
      return std::hash<std::string_view>()(key);
    }
  };

  const size_t capacity_;
  std::mutex mu_;
  std::list<Entry> lru_;
  std::unordered_map<std::string_view, std::list<Entry>::iterator, Hash,
                     std::equal_to<>>
      index_;
};

struct WorkloadShape {
  // Sized so the resident set outruns L2: both designs go to memory on
  // most probes, which is exactly where a 1-line tag probe plus a
  // prefetch wave separates from a pointer-chasing map + list splice.
  size_t capacity = 1 << 17;
  size_t resident_keys = 1 << 16;  // half the capacity stays hit-hot
  size_t ops_per_thread = 200000;
  size_t repeats = 5;
};

uint64_t ValueOf(size_t i) {
  return static_cast<uint64_t>(i) * 2654435761u + 7;
}

/// Runs `threads` workers, each doing `ops` operations of the 90/10
/// lookup/insert mix against `lookup`/`insert` closures, and returns
/// aggregate operations per second. `verify_failures` counts value
/// mismatches (must end at zero).
double RunWorkers(
    size_t threads, size_t ops, const std::vector<std::string>& keys,
    std::atomic<uint64_t>* verify_failures,
    const std::function<void(size_t tid, size_t ops,
                             std::atomic<uint64_t>*)>& body) {
  (void)keys;
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();
  for (size_t tid = 0; tid < threads; ++tid) {
    workers.emplace_back([&, tid] { body(tid, ops, verify_failures); });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<double>(threads * ops) / std::max(elapsed, 1e-9);
}

double Median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace
}  // namespace leapme::bench

int main() {
  using namespace leapme;
  using namespace leapme::bench;

  WorkloadShape shape;
  if (ScaleFromEnv() == eval::EvalScale::kTest) {
    shape.capacity = 1 << 11;
    shape.resident_keys = 1 << 10;
    shape.ops_per_thread = 20000;
    shape.repeats = 3;
  }
  if (const char* env = std::getenv("LEAPME_BENCH_REPEATS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1 && parsed <= 99) {
      shape.repeats = static_cast<size_t>(parsed);
    }
  }

  // Shared key table: resident keys plus a churn tail each thread walks
  // monotonically so inserts always bring novel keys (real evictions).
  const size_t churn_keys = shape.resident_keys;
  std::vector<std::string> keys;
  keys.reserve(shape.resident_keys + churn_keys);
  // Keys sized like real cache traffic: embedding-cache keys are short
  // vocabulary tokens that fit std::string's SSO buffer, so a key
  // compare stays inside the already-fetched node/slot line.
  for (size_t i = 0; i < shape.resident_keys + churn_keys; ++i) {
    char key[24];
    std::snprintf(key, sizeof(key), "k%07u",
                  static_cast<unsigned>(i % 10000000u));
    keys.emplace_back(key);
  }
  std::vector<std::string_view> views(keys.begin(), keys.end());
  std::atomic<uint64_t> verify_failures{0};

  // One measured run of the 90/10 mix against either implementation.
  auto measure = [&](size_t threads, auto& cache, auto lookup_one) {
    std::vector<double> samples;
    for (size_t repeat = 0; repeat < shape.repeats; ++repeat) {
      samples.push_back(RunWorkers(
          threads, shape.ops_per_thread, keys, &verify_failures,
          [&](size_t tid, size_t ops, std::atomic<uint64_t>* failures) {
            Rng rng(100 + 17 * tid);
            size_t churn = tid;
            for (size_t i = 0; i < ops; ++i) {
              if (rng.NextInt(0, 9) < 9) {
                const auto pick = static_cast<size_t>(
                    rng.NextInt(0, shape.resident_keys - 1));
                lookup_one(cache, pick, failures);
              } else {
                const size_t pick =
                    shape.resident_keys + (churn % churn_keys);
                churn += threads;
                cache.Insert(views[pick], ValueOf(pick));
              }
            }
          }));
    }
    return Median(std::move(samples));
  };

  auto lru_lookup = [&](MutexLruCache& cache, size_t pick,
                        std::atomic<uint64_t>* failures) {
    uint64_t value = 0;
    if (cache.Lookup(views[pick], &value) && value != ValueOf(pick)) {
      failures->fetch_add(1, std::memory_order_relaxed);
    }
  };
  auto sharded_lookup = [&](cache::ShardedCache<uint64_t>& cache,
                            size_t pick, std::atomic<uint64_t>* failures) {
    cache.Lookup(views[pick], [&](const uint64_t& value) {
      if (value != ValueOf(pick)) {
        failures->fetch_add(1, std::memory_order_relaxed);
      }
    });
  };

  auto warm_lru = [&] {
    auto cache = std::make_unique<MutexLruCache>(shape.capacity);
    for (size_t i = 0; i < shape.resident_keys; ++i) {
      cache->Insert(views[i], ValueOf(i));
    }
    return cache;
  };
  auto warm_sharded = [&] {
    auto cache =
        std::make_unique<cache::ShardedCache<uint64_t>>(shape.capacity, 16);
    for (size_t i = 0; i < shape.resident_keys; ++i) {
      cache->Insert(views[i], ValueOf(i));
    }
    return cache;
  };

  auto lru_1t = warm_lru();
  const double lru_ops_1t = measure(1, *lru_1t, lru_lookup);
  auto lru_8t = warm_lru();
  const double lru_ops_8t = measure(8, *lru_8t, lru_lookup);
  auto sharded_1t = warm_sharded();
  const double sharded_ops_1t = measure(1, *sharded_1t, sharded_lookup);
  auto sharded_8t = warm_sharded();
  const double sharded_ops_8t = measure(8, *sharded_8t, sharded_lookup);

  // Batched passes: full waves through LookupBatch, the prefetch-ahead
  // path the scoring pipeline uses (the old LRU has no batch API — its
  // callers issued dependent sequential probes, which is the point).
  auto measure_batch = [&](size_t threads, auto& cache) {
    std::vector<double> samples;
    for (size_t repeat = 0; repeat < shape.repeats; ++repeat) {
      samples.push_back(RunWorkers(
          threads, shape.ops_per_thread, keys, &verify_failures,
          [&](size_t tid, size_t ops, std::atomic<uint64_t>* failures) {
            constexpr size_t kWave = 64;
            Rng rng(300 + 13 * tid);
            std::vector<std::string_view> wave(kWave);
            std::vector<size_t> picks(kWave);
            uint8_t found[kWave];
            for (size_t done = 0; done + kWave <= ops; done += kWave) {
              for (size_t i = 0; i < kWave; ++i) {
                picks[i] = static_cast<size_t>(
                    rng.NextInt(0, shape.resident_keys - 1));
                wave[i] = views[picks[i]];
              }
              cache.LookupBatch(
                  wave, found, [&](size_t i, const uint64_t& value) {
                    if (value != ValueOf(picks[i])) {
                      failures->fetch_add(1, std::memory_order_relaxed);
                    }
                  });
            }
          }));
    }
    return Median(std::move(samples));
  };
  auto sharded_batch_1 = warm_sharded();
  const double sharded_batch_ops_1t = measure_batch(1, *sharded_batch_1);
  auto sharded_batch_8 = warm_sharded();
  const double sharded_batch_ops_8t = measure_batch(8, *sharded_batch_8);

  if (verify_failures.load() != 0) {
    std::fprintf(stderr, "cache_bench: %llu value mismatches\n",
                 static_cast<unsigned long long>(verify_failures.load()));
    return 1;
  }

  std::printf(
      "cache_bench: capacity=%zu resident=%zu ops/thread=%zu repeats=%zu\n"
      "  mutex-lru   1t %12.0f ops/s   8t %12.0f ops/s\n"
      "  sharded     1t %12.0f ops/s   8t %12.0f ops/s\n"
      "  sharded/batch 1t %10.0f ops/s   8t %12.0f ops/s\n"
      "  speedup     1t %.2fx  8t %.2fx  batch-vs-lru 1t %.2fx  8t %.2fx\n",
      shape.capacity, shape.resident_keys, shape.ops_per_thread,
      shape.repeats, lru_ops_1t, lru_ops_8t, sharded_ops_1t, sharded_ops_8t,
      sharded_batch_ops_1t, sharded_batch_ops_8t,
      sharded_ops_1t / lru_ops_1t, sharded_ops_8t / lru_ops_8t,
      sharded_batch_ops_1t / lru_ops_1t,
      sharded_batch_ops_8t / lru_ops_8t);

  JsonReport report("cache");
  report.Metric("capacity", static_cast<uint64_t>(shape.capacity));
  report.Metric("resident_keys", static_cast<uint64_t>(shape.resident_keys));
  report.Metric("ops_per_thread",
                static_cast<uint64_t>(shape.ops_per_thread));
  report.Metric("repeats", static_cast<uint64_t>(shape.repeats));
  report.Metric("lru_ops_per_sec_1t", lru_ops_1t);
  report.Metric("lru_ops_per_sec_8t", lru_ops_8t);
  report.Metric("sharded_ops_per_sec_1t", sharded_ops_1t);
  report.Metric("sharded_ops_per_sec_8t", sharded_ops_8t);
  report.Metric("sharded_batch_ops_per_sec_1t", sharded_batch_ops_1t);
  report.Metric("sharded_batch_ops_per_sec_8t", sharded_batch_ops_8t);
  report.Metric("speedup_1t", sharded_ops_1t / lru_ops_1t);
  report.Metric("speedup_8t", sharded_ops_8t / lru_ops_8t);
  report.Metric("speedup_batch_1t", sharded_batch_ops_1t / lru_ops_1t);
  report.Metric("speedup_batch_8t", sharded_batch_ops_8t / lru_ops_8t);
  WriteJsonReport(report);
  return 0;
}
