// Reproduces the paper's Table II: P/R/F1 of LEAPME (all features,
// embeddings only, non-embeddings only) and the five baselines on the four
// product datasets, for 20% and 80% training sources, in the three feature
// sections Instances / Names / Both.
//
// Environment knobs:
//   LEAPME_SCALE       test | bench (default) | paper
//   LEAPME_TABLE2_REPS repetitions per cell (default 2; paper used 25)

#include <chrono>
#include <cstdio>
#include <map>

#include "baselines/aml.h"
#include "baselines/fca_map.h"
#include "baselines/lsh.h"
#include "baselines/nezhadi.h"
#include "baselines/semprop.h"
#include "bench/bench_util.h"
#include "common/string_util.h"
#include "eval/report.h"

namespace {

using leapme::Status;
using leapme::baselines::AmlMatcher;
using leapme::baselines::FcaMapMatcher;
using leapme::baselines::LshMatcher;
using leapme::baselines::NezhadiMatcher;
using leapme::baselines::PairMatcher;
using leapme::baselines::SemPropMatcher;
using leapme::bench::CheckOk;
using leapme::bench::LeapmeFactory;
using leapme::bench::ScaleFromEnv;
using leapme::embedding::EmbeddingModel;
using leapme::eval::EvaluationOptions;
using leapme::eval::EvaluationResult;
using leapme::eval::MatcherFactory;
using leapme::features::FeatureConfig;
using leapme::features::KindSelection;
using leapme::features::OriginSelection;

const char* SectionName(OriginSelection origin) {
  switch (origin) {
    case OriginSelection::kInstancesOnly:
      return "Instances";
    case OriginSelection::kNamesOnly:
      return "Names";
    case OriginSelection::kBoth:
      return "Both";
  }
  return "?";
}

const char* LeapmeVariantName(KindSelection kinds) {
  switch (kinds) {
    case KindSelection::kBoth:
      return "LEAPME";
    case KindSelection::kEmbeddingsOnly:
      return "LEAPME(emb)";
    case KindSelection::kNonEmbeddingsOnly:
      return "LEAPME(-emb)";
  }
  return "?";
}

}  // namespace

int main() {
  const auto scale = ScaleFromEnv();
  EvaluationOptions eval_options;
  eval_options.repetitions = static_cast<size_t>(
      leapme::eval::EnvInt("LEAPME_TABLE2_REPS", 2));

  leapme::eval::ResultsTable table;
  // Fix the column order to the paper's.
  for (const char* approach :
       {"LEAPME", "LEAPME(emb)", "LEAPME(-emb)", "Nezhadi", "AML", "FCA-Map",
        "SemProp", "LSH"}) {
    table.AddApproach(approach);
  }

  const auto start_time = std::chrono::steady_clock::now();
  for (const auto& spec : leapme::eval::DefaultDatasetSpecs(scale)) {
    auto eval_dataset = leapme::eval::BuildEvalDataset(spec);
    CheckOk(eval_dataset.status(), "BuildEvalDataset");
    std::fprintf(stderr, "[table2] dataset %s: %zu sources, %zu properties, "
                         "%zu instances, %zu matching pairs\n",
                 spec.name.c_str(), eval_dataset->dataset.source_count(),
                 eval_dataset->dataset.property_count(),
                 eval_dataset->dataset.instance_count(),
                 eval_dataset->dataset.CountMatchingPairs());

    for (double fraction : {0.2, 0.8}) {
      eval_options.train_fraction = fraction;
      std::string row = leapme::StrFormat("%s %.0f%%", spec.name.c_str(),
                                          fraction * 100.0);

      // LEAPME: the nine feature configurations.
      for (OriginSelection origin :
           {OriginSelection::kInstancesOnly, OriginSelection::kNamesOnly,
            OriginSelection::kBoth}) {
        for (KindSelection kinds :
             {KindSelection::kBoth, KindSelection::kEmbeddingsOnly,
              KindSelection::kNonEmbeddingsOnly}) {
          FeatureConfig config{origin, kinds};
          auto result = leapme::eval::EvaluateMatcher(
              LeapmeFactory(config, LeapmeVariantName(kinds)),
              *eval_dataset, eval_options);
          CheckOk(result.status(), "EvaluateMatcher(LEAPME)");
          table.AddResult(SectionName(origin), row, LeapmeVariantName(kinds),
                          result->mean);
        }
      }

      // Baselines: name-based ones are reported in the Names and Both
      // sections, the instance-based LSH in Instances and Both.
      struct BaselineSpec {
        const char* name;
        MatcherFactory factory;
        bool name_based;
      };
      const BaselineSpec baselines[] = {
          {"Nezhadi",
           [](const EmbeddingModel&) -> std::unique_ptr<PairMatcher> {
             return std::make_unique<NezhadiMatcher>();
           },
           true},
          {"AML",
           [](const EmbeddingModel&) -> std::unique_ptr<PairMatcher> {
             return std::make_unique<AmlMatcher>();
           },
           true},
          {"FCA-Map",
           [](const EmbeddingModel&) -> std::unique_ptr<PairMatcher> {
             return std::make_unique<FcaMapMatcher>();
           },
           true},
          {"SemProp",
           [](const EmbeddingModel& model) -> std::unique_ptr<PairMatcher> {
             return std::make_unique<SemPropMatcher>(&model);
           },
           true},
          {"LSH",
           [](const EmbeddingModel&) -> std::unique_ptr<PairMatcher> {
             return std::make_unique<LshMatcher>();
           },
           false},
      };
      for (const BaselineSpec& baseline : baselines) {
        auto result = leapme::eval::EvaluateMatcher(baseline.factory,
                                                    *eval_dataset,
                                                    eval_options);
        CheckOk(result.status(), baseline.name);
        if (baseline.name_based) {
          table.AddResult("Names", row, baseline.name, result->mean);
        } else {
          table.AddResult("Instances", row, baseline.name, result->mean);
        }
        table.AddResult("Both", row, baseline.name, result->mean);
      }
      std::fprintf(stderr, "[table2] %s done\n", row.c_str());
    }
  }

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  std::printf("Table II reproduction (mean of %zu runs per cell; "
              "scale=%s)\n\n%s\n",
              eval_options.repetitions,
              scale == leapme::eval::EvalScale::kPaper    ? "paper"
              : scale == leapme::eval::EvalScale::kBench ? "bench"
                                                         : "test",
              table.Render().c_str());
  std::printf("total time: %.1f s\n", elapsed);

  leapme::bench::JsonReport report("table2");
  report.Metric("repetitions", eval_options.repetitions);
  report.Metric("total_time_s", elapsed);
  report.RawMetric("rows", table.RenderJsonRows());
  leapme::bench::WriteJsonReport(report);
  return 0;
}
