// Sustained-load soak benchmark: open-loop Zipf index_match traffic at a
// fixed target RPS against the full serve stack (scaled multi-category
// catalog -> MatcherService with catalog index -> TcpServer on loopback),
// with coordinated-omission-safe latency accounting (DESIGN.md §15).
//
// Unlike serve_bench's closed-loop phases, the arrival schedule here is
// fixed before the run: a slow or stalled server makes requests fire
// late, and their latency is charged from the *intended* send time. Both
// clocks are reported so the CO gap is visible in BENCH_soak.json.
//
// Environment knobs: LEAPME_SCALE (test | bench | paper), LEAPME_FAULTS
// (armed process-wide on first use, so a chaos mix degrades this very
// server), LEAPME_BENCH_DIR.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "blocking/candidate_pipeline.h"
#include "common/faults/fault_injector.h"
#include "data/domain.h"
#include "data/generator.h"
#include "data/splitting.h"
#include "embedding/caching_model.h"
#include "embedding/synthetic_model.h"
#include "serve/json.h"
#include "serve/tcp_server.h"
#include "tools/line_client.h"
#include "workload/arrival.h"
#include "workload/latency_recorder.h"
#include "workload/open_loop.h"
#include "workload/traffic.h"

namespace {

using namespace leapme;

struct SoakShape {
  size_t catalog_properties;
  size_t catalog_sources;
  size_t entities_per_source;
  size_t clients;
  double target_rps;
  double duration_s;
  double zipf_s;
  size_t top_k;
  // name-token's stop-bucket cut is relative to the catalog, so the
  // spec tightens as the catalog grows: at 10^6 properties a shared
  // ontology token ("price", "brand") buckets tens of thousands of
  // properties across categories — the cut must sit above the ~10^2
  // per-category tag bucket but below those cross-category buckets.
  const char* blocking_spec;
};

SoakShape ShapeFor(eval::EvalScale scale) {
  switch (scale) {
    case eval::EvalScale::kTest:
      return {1500, 20, 6, 2, 120.0, 1.5, 1.0, 5, "name-token"};
    case eval::EvalScale::kPaper:
      // The acceptance configuration: a 10^6-property catalog across
      // hundreds of sources in serve index mode.
      return {1000000, 400,  10, 4, 80.0, 12.0, 1.0, 5,
              "name-token:max-freq=0.0005"};
    default:
      return {40000, 100, 8, 4, 120.0, 5.0, 1.0, 5,
              "name-token:max-freq=0.02"};
  }
}

std::string SummaryJson(const workload::LatencyRecorder& recorder) {
  const workload::LatencyRecorder::Summary s = recorder.Snapshot();
  return "{\"count\":" + std::to_string(s.count) +
         ",\"p50_us\":" + serve::FormatJsonDouble(s.p50_us) +
         ",\"p95_us\":" + serve::FormatJsonDouble(s.p95_us) +
         ",\"p99_us\":" + serve::FormatJsonDouble(s.p99_us) +
         ",\"p999_us\":" + serve::FormatJsonDouble(s.p999_us) +
         ",\"max_us\":" + serve::FormatJsonDouble(s.max_us) +
         ",\"mean_us\":" + serve::FormatJsonDouble(s.mean_us) + "}";
}

/// Renders one index_match request line for a catalog property.
std::string IndexMatchLine(const data::Dataset& catalog,
                           data::PropertyId id, size_t event, size_t k) {
  std::string line = "{\"op\":\"index_match\",\"id\":" +
                     std::to_string(event) + ",\"property\":{\"name\":";
  serve::AppendJsonString(&line, catalog.property(id).name);
  line += ",\"values\":[";
  const auto& instances = catalog.instances(id);
  for (size_t i = 0; i < instances.size(); ++i) {
    if (i > 0) line += ',';
    serve::AppendJsonString(&line, instances[i].value);
  }
  line += "]},\"k\":" + std::to_string(k) + "}";
  return line;
}

workload::Outcome ClassifyResponse(const std::string& response) {
  auto parsed = serve::JsonValue::Parse(response);
  if (!parsed.ok()) return workload::Outcome::kError;
  const serve::JsonValue* ok = parsed->Find("ok");
  if (ok == nullptr || !ok->is_bool()) return workload::Outcome::kError;
  if (ok->AsBool()) {
    const serve::JsonValue* degraded = parsed->Find("degraded");
    return degraded != nullptr && degraded->is_bool() && degraded->AsBool()
               ? workload::Outcome::kDegraded
               : workload::Outcome::kOk;
  }
  const serve::JsonValue* error = parsed->Find("error");
  const serve::JsonValue* code =
      error != nullptr && error->is_object() ? error->Find("code") : nullptr;
  if (code != nullptr && code->is_string()) {
    const std::string& name = code->AsString();
    if (name == "Unavailable" || name == "ResourceExhausted") {
      return workload::Outcome::kShed;
    }
    if (name == "DeadlineExceeded") return workload::Outcome::kDeadline;
  }
  return workload::Outcome::kError;
}

}  // namespace

int main() {
  const SoakShape shape = ShapeFor(bench::ScaleFromEnv());

  // Scaled multi-category catalog: the serve index.
  data::ScaledCatalogOptions catalog_options;
  catalog_options.target_properties = shape.catalog_properties;
  catalog_options.num_sources = shape.catalog_sources;
  catalog_options.entities_per_source = shape.entities_per_source;
  catalog_options.sources_per_category =
      std::min<size_t>(6, shape.catalog_sources);
  catalog_options.seed = 101;
  auto catalog = data::GenerateScaledCatalog(catalog_options);
  bench::CheckOk(catalog.status(), "GenerateScaledCatalog");
  std::fprintf(stderr, "soak_bench: catalog %zu properties / %zu sources / "
                       "%zu instances\n",
               catalog->property_count(), catalog->source_count(),
               catalog->instance_count());

  // Embedding space covering every domain's vocabulary; words the
  // clusters miss fall back to hashed vectors.
  std::vector<embedding::SemanticCluster> clusters;
  for (const data::DomainSpec* domain : data::AllDomains()) {
    auto domain_clusters = data::DomainClusters(*domain);
    clusters.insert(clusters.end(), domain_clusters.begin(),
                    domain_clusters.end());
  }
  auto base_model = embedding::SyntheticEmbeddingModel::Build(
      clusters, {.dimension = 16,
                 .seed = 102,
                 .oov_policy = embedding::OovPolicy::kHashedVector});
  bench::CheckOk(base_model.status(), "SyntheticEmbeddingModel::Build");
  embedding::CachingEmbeddingModel cached(&base_model.value(), 1 << 17);

  // A small conventional catalog trains the matcher; the scaled catalog
  // is then attached as the serve index (training over 10^6 properties
  // is not what this benchmark measures).
  data::GeneratorOptions train_options;
  train_options.num_sources = 4;
  train_options.min_entities_per_source = 10;
  train_options.max_entities_per_source = 10;
  train_options.seed = 103;
  auto train_set = data::GenerateCatalog(data::TvDomain(), train_options);
  bench::CheckOk(train_set.status(), "GenerateCatalog");
  Rng rng(104);
  data::SourceSplit split = data::SplitSources(*train_set, 0.8, rng);
  auto training =
      data::BuildTrainingPairs(*train_set, split.train_sources, 2.0, rng);
  bench::CheckOk(training.status(), "BuildTrainingPairs");
  core::LeapmeMatcher matcher(&cached);
  bench::CheckOk(matcher.Fit(*train_set, *training), "Fit");

  serve::ServiceOptions service_options;
  service_options.max_queue_pairs = 8192;
  auto service = serve::MatcherService::Create(&matcher, &cached,
                                               service_options);
  bench::CheckOk(service.status(), "MatcherService::Create");

  // Name-token blocking: at 10^6 properties the category tag token
  // scopes each query to its category's few-hundred candidates without
  // an embedding index over the full catalog.
  auto pipeline =
      blocking::CandidatePipeline::Parse(shape.blocking_spec, &cached);
  bench::CheckOk(pipeline.status(), "CandidatePipeline::Parse");
  bench::CheckOk((*service)->AttachCatalog(&*catalog, pipeline->get()),
                 "AttachCatalog");
  std::fprintf(stderr, "soak_bench: catalog attached and indexed\n");

  serve::ServerOptions server_options;
  server_options.port = 0;
  server_options.deadline_ms = 750;
  serve::TcpServer server(service->get(), server_options);
  bench::CheckOk(server.Start(), "TcpServer::Start");
  if (!tools::WaitForServerReady("127.0.0.1", server.port())) {
    std::fprintf(stderr, "soak_bench: server never reported ready\n");
    return 1;
  }

  // Zipf request sampler + open-loop schedule, both seeded: the same
  // traffic fires at any client thread count.
  auto sampler = workload::RequestSampler::Build(
      {.catalog_size = catalog->property_count(),
       .zipf_s = shape.zipf_s,
       .seed = 105});
  bench::CheckOk(sampler.status(), "RequestSampler::Build");
  auto schedule = workload::ArrivalSchedule::Build(
      {.target_rps = shape.target_rps,
       .duration_s = shape.duration_s,
       .poisson = true,
       .seed = 106});
  bench::CheckOk(schedule.status(), "ArrivalSchedule::Build");

  const int port = server.port();
  workload::OpenLoopResult result;
  workload::RunOpenLoop(
      *schedule, static_cast<unsigned>(shape.clients),
      [&](size_t event) {
        thread_local std::unique_ptr<tools::LineClient> client;
        if (client == nullptr || !client->connected()) {
          client = std::make_unique<tools::LineClient>("127.0.0.1", port);
        }
        if (!client->connected()) return workload::Outcome::kError;
        const auto id = static_cast<data::PropertyId>(
            sampler->PropertyAt(event));
        std::string response;
        if (!client->SendLine(
                IndexMatchLine(*catalog, id, event, shape.top_k)) ||
            !client->ReadLine(&response)) {
          // Connection dropped (server deadline close, injected fault):
          // reconnect on the next event, count this one as an error.
          client.reset();
          return workload::Outcome::kError;
        }
        return ClassifyResponse(response);
      },
      &result);

  const serve::ServiceStats stats = (*service)->Snapshot();
  server.Stop();

  const double achieved_rps =
      result.elapsed_s > 0.0
          ? static_cast<double>(result.sent) / result.elapsed_s
          : 0.0;
  std::string out =
      "{\"config\":{\"catalog_properties\":" +
      std::to_string(catalog->property_count()) +
      ",\"catalog_sources\":" + std::to_string(catalog->source_count()) +
      ",\"clients\":" + std::to_string(shape.clients) +
      ",\"target_rps\":" + serve::FormatJsonDouble(shape.target_rps) +
      ",\"duration_s\":" + serve::FormatJsonDouble(shape.duration_s) +
      ",\"zipf_s\":" + serve::FormatJsonDouble(shape.zipf_s) +
      ",\"blocking\":\"" + shape.blocking_spec +
      "\",\"faults\":" + (faults::FaultInjector::Global().armed()
                            ? std::string("true")
                            : std::string("false")) +
      "},\"achieved_rps\":" + serve::FormatJsonDouble(achieved_rps) +
      ",\"sent\":" + std::to_string(result.sent) +
      ",\"ok\":" + std::to_string(result.ok) +
      ",\"degraded\":" + std::to_string(result.degraded) +
      ",\"shed\":" + std::to_string(result.shed) +
      ",\"deadline\":" + std::to_string(result.deadline) +
      ",\"errors\":" + std::to_string(result.errors) +
      ",\"late_starts\":" + std::to_string(result.late_starts) +
      ",\"intended\":" + SummaryJson(result.intended) +
      ",\"service\":" + SummaryJson(result.service) +
      ",\"server\":{\"rejected_overload\":" +
      std::to_string(stats.rejected_overload) +
      ",\"deadline_exceeded\":" + std::to_string(stats.deadline_exceeded) +
      ",\"degraded_responses\":" +
      std::to_string(stats.degraded_responses) +
      ",\"faults_injected\":" + std::to_string(stats.faults_injected) +
      ",\"queue_depth\":" + std::to_string(stats.queue_depth) +
      ",\"queue_age_us\":" + std::to_string(stats.queue_age_us) +
      ",\"pairs_scored\":" + std::to_string(stats.pairs_scored) +
      ",\"io_backend\":\"" + stats.io_backend +
      "\",\"event_loop_threads\":" +
      std::to_string(stats.event_loop_threads) +
      ",\"epoll_wakeups\":" + std::to_string(stats.epoll_wakeups) +
      ",\"writable_backlog_bytes\":" +
      std::to_string(stats.writable_backlog_bytes) +
      ",\"connections_active\":" +
      std::to_string(stats.connections_active) +
      ",\"embedding_cache_hits\":" +
      std::to_string(stats.embedding_cache_hits) +
      ",\"embedding_cache_misses\":" +
      std::to_string(stats.embedding_cache_misses) +
      ",\"embedding_cache_evictions\":" +
      std::to_string(stats.embedding_cache_evictions) +
      ",\"property_cache_hits\":" +
      std::to_string(stats.property_cache_hits) +
      ",\"property_cache_misses\":" +
      std::to_string(stats.property_cache_misses) +
      ",\"property_cache_evictions\":" +
      std::to_string(stats.property_cache_evictions) +
      ",\"cache_shards\":" + std::to_string(stats.cache_shards) +
      ",\"model_version\":" + std::to_string(stats.model_version) + "}}";
  std::printf("%s\n", out.c_str());

  bench::JsonReport report("soak");
  report.Metric("catalog_properties", catalog->property_count());
  report.Metric("catalog_sources", catalog->source_count());
  report.Metric("clients", shape.clients);
  report.RawMetric("target_rps", serve::FormatJsonDouble(shape.target_rps));
  report.RawMetric("achieved_rps", serve::FormatJsonDouble(achieved_rps));
  report.Metric("sent", result.sent);
  report.Metric("ok", result.ok);
  report.Metric("degraded", result.degraded);
  report.Metric("shed", result.shed);
  report.Metric("deadline", result.deadline);
  report.Metric("errors", result.errors);
  report.Metric("late_starts", result.late_starts);
  report.RawMetric("intended", SummaryJson(result.intended));
  report.RawMetric("service", SummaryJson(result.service));
  report.Metric("server_rejected_overload", stats.rejected_overload);
  report.Metric("server_deadline_exceeded", stats.deadline_exceeded);
  report.Metric("server_degraded_responses", stats.degraded_responses);
  report.Metric("server_faults_injected", stats.faults_injected);
  report.Metric("server_pairs_scored", stats.pairs_scored);
  report.Metric("server_queue_depth", stats.queue_depth);
  report.Metric("server_queue_age_us", stats.queue_age_us);
  std::string backend_json;
  serve::AppendJsonString(&backend_json, stats.io_backend);
  report.RawMetric("server_io_backend", backend_json);
  report.Metric("server_event_loop_threads", stats.event_loop_threads);
  report.Metric("server_epoll_wakeups", stats.epoll_wakeups);
  report.Metric("server_writable_backlog_bytes",
                stats.writable_backlog_bytes);
  report.Metric("server_connections_active", stats.connections_active);
  report.Metric("server_embedding_cache_hits", stats.embedding_cache_hits);
  report.Metric("server_embedding_cache_misses",
                stats.embedding_cache_misses);
  report.Metric("server_embedding_cache_evictions",
                stats.embedding_cache_evictions);
  report.Metric("server_property_cache_hits", stats.property_cache_hits);
  report.Metric("server_property_cache_misses", stats.property_cache_misses);
  report.Metric("server_property_cache_evictions",
                stats.property_cache_evictions);
  report.Metric("server_cache_shards", stats.cache_shards);
  // Which model generation answered the soak: >1 would mean a reload
  // happened mid-run (none is driven here, but the provenance is free).
  report.Metric("model_version", stats.model_version);
  bench::WriteJsonReport(report);
  return 0;
}
