// The paper's §VI future-work experiment: deriving clusters of equivalent
// properties from the LEAPME match results. Compares connected-components
// clustering with star clustering on the similarity graph, per dataset.
//
// Environment knobs: LEAPME_SCALE, LEAPME_CLUSTER_REPS (default 2).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "data/splitting.h"
#include "graph/similarity_graph.h"

namespace {

using namespace leapme;

}  // namespace

int main() {
  const auto scale = bench::ScaleFromEnv();
  const auto reps =
      static_cast<size_t>(eval::EnvInt("LEAPME_CLUSTER_REPS", 2));

  std::printf(
      "Property clustering from LEAPME match results (paper §VI)\n\n"
      "%-12s %-22s %-8s %-8s %-8s %-10s\n", "dataset", "method", "P", "R",
      "F1", "clusters");

  bench::JsonReport report("clustering");
  report.Metric("repetitions", reps);
  std::string rows = "[";
  for (const auto& spec : eval::DefaultDatasetSpecs(scale)) {
    auto eval_dataset = eval::BuildEvalDataset(spec);
    bench::CheckOk(eval_dataset.status(), "BuildEvalDataset");
    const data::Dataset& dataset = eval_dataset->dataset;

    graph::ClusterQuality components_total;
    graph::ClusterQuality stars_total;
    size_t component_clusters = 0;
    size_t star_clusters = 0;
    for (size_t rep = 0; rep < reps; ++rep) {
      Rng rng(1000 + rep);
      data::SourceSplit split = data::SplitSources(dataset, 0.8, rng);
      auto train =
          data::BuildTrainingPairs(dataset, split.train_sources, 2.0, rng);
      bench::CheckOk(train.status(), "BuildTrainingPairs");

      core::LeapmeMatcher matcher(eval_dataset->model.get());
      bench::CheckOk(matcher.Fit(dataset, *train), "Fit");
      auto graph =
          matcher.BuildSimilarityGraph(dataset.AllCrossSourcePairs());
      bench::CheckOk(graph.status(), "BuildSimilarityGraph");

      graph::ClusterQuality components = graph::EvaluateClusters(
          graph::ConnectedComponentClusters(*graph, 0.5), dataset);
      graph::ClusterQuality stars = graph::EvaluateClusters(
          graph::StarClusters(*graph, 0.5), dataset);
      components_total.precision += components.precision;
      components_total.recall += components.recall;
      components_total.f1 += components.f1;
      component_clusters += components.non_singleton_clusters;
      stars_total.precision += stars.precision;
      stars_total.recall += stars.recall;
      stars_total.f1 += stars.f1;
      star_clusters += stars.non_singleton_clusters;
    }
    auto n = static_cast<double>(reps);
    std::printf("%-12s %-22s %-8.2f %-8.2f %-8.2f %-10zu\n",
                spec.name.c_str(), "connected components",
                components_total.precision / n, components_total.recall / n,
                components_total.f1 / n, component_clusters / reps);
    std::printf("%-12s %-22s %-8.2f %-8.2f %-8.2f %-10zu\n",
                spec.name.c_str(), "star clustering",
                stars_total.precision / n, stars_total.recall / n,
                stars_total.f1 / n, star_clusters / reps);
    rows += StrFormat(
        "%s{\"dataset\":\"%s\",\"components_f1\":%.4f,\"stars_f1\":%.4f,"
        "\"components_clusters\":%zu,\"stars_clusters\":%zu}",
        rows.size() > 1 ? "," : "", spec.name.c_str(),
        components_total.f1 / n, stars_total.f1 / n,
        component_clusters / reps, star_clusters / reps);
  }
  rows.push_back(']');

  std::printf(
      "\nexpected shape: star clustering trades a little recall for much\n"
      "better precision than connected components, whose clusters merge\n"
      "through single spurious bridge edges.\n");

  report.RawMetric("rows", rows);
  bench::WriteJsonReport(report);
  return 0;
}
