// Reproduces the paper's feature-kind analysis (§V-A / §V-C, the 3x3
// configuration grid of Table II) at 80% training, and ablates the design
// choices DESIGN.md §7 calls out:
//   - out-of-vocabulary policy (zero vector, the paper's choice, vs
//     hashed vectors),
//   - signed vs absolute property-vector difference,
//   - the neural classifier vs classic learners on identical features.
//
// Environment knobs: LEAPME_SCALE, LEAPME_ABLATION_REPS (default 2).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "core/leapme.h"
#include "eval/report.h"
#include "ml/adaboost.h"
#include "ml/decision_tree.h"
#include "ml/logistic_regression.h"
#include "ml/scaler.h"

namespace {

using namespace leapme;

// Evaluates a classic classifier on exactly LEAPME's feature pipeline.
ml::MatchQuality EvaluateClassicLearner(
    const eval::EvalDataset& eval_dataset, ml::BinaryClassifier& learner,
    uint64_t seed) {
  const data::Dataset& dataset = eval_dataset.dataset;
  Rng rng(seed);
  data::SourceSplit split = data::SplitSources(dataset, 0.8, rng);
  auto train = data::BuildTrainingPairs(dataset, split.train_sources, 2.0,
                                        rng);
  bench::CheckOk(train.status(), "BuildTrainingPairs");
  auto test = data::BuildTestPairs(dataset, split.train_sources);

  features::FeaturePipeline pipeline(eval_dataset.model.get());
  std::vector<features::PropertyFeatures> properties;
  std::vector<std::string> values;
  for (data::PropertyId id = 0; id < dataset.property_count(); ++id) {
    values.clear();
    for (const auto& instance : dataset.instances(id)) {
      values.push_back(instance.value);
    }
    properties.push_back(
        pipeline.ComputeProperty(dataset.property(id).name, values));
  }
  auto design_for = [&](const std::vector<data::LabeledPair>& pairs) {
    std::vector<const features::PropertyFeatures*> lhs;
    std::vector<const features::PropertyFeatures*> rhs;
    for (const auto& labeled : pairs) {
      lhs.push_back(&properties[labeled.pair.a]);
      rhs.push_back(&properties[labeled.pair.b]);
    }
    return pipeline.BuildDesignMatrix(lhs, rhs, {});
  };

  nn::Matrix train_design = design_for(*train);
  std::vector<int32_t> train_labels;
  for (const auto& labeled : *train) train_labels.push_back(labeled.label);
  ml::StandardScaler scaler;
  bench::CheckOk(scaler.FitTransform(&train_design), "scaler");
  bench::CheckOk(learner.Fit(train_design, train_labels), "learner fit");

  nn::Matrix test_design = design_for(test);
  bench::CheckOk(scaler.Transform(&test_design), "scaler test");
  std::vector<int32_t> predictions = learner.Predict(test_design);
  std::vector<int32_t> labels;
  for (const auto& labeled : test) labels.push_back(labeled.label);
  return ml::ComputeQuality(predictions, labels);
}

}  // namespace

int main() {
  const auto scale = bench::ScaleFromEnv();
  eval::EvaluationOptions eval_options;
  eval_options.train_fraction = 0.8;
  eval_options.repetitions =
      static_cast<size_t>(eval::EnvInt("LEAPME_ABLATION_REPS", 2));

  eval::ResultsTable grid;
  eval::ResultsTable ablations;

  for (const auto& spec : eval::DefaultDatasetSpecs(scale)) {
    auto eval_dataset = eval::BuildEvalDataset(spec);
    bench::CheckOk(eval_dataset.status(), "BuildEvalDataset");

    // 3x3 feature-configuration grid.
    for (const features::FeatureConfig& config :
         features::AllFeatureConfigs()) {
      auto result = eval::EvaluateMatcher(
          bench::LeapmeFactory(config, config.ToString()), *eval_dataset,
          eval_options);
      bench::CheckOk(result.status(), "grid");
      grid.AddResult("Feature grid (80% training)", spec.name,
                     config.ToString(), result->mean);
    }

    // OOV policy ablation: rebuild the embedding space with the paper's
    // zero-vector policy.
    {
      eval::DatasetSpec zero_spec = spec;
      zero_spec.embedding.oov_policy = embedding::OovPolicy::kZeroVector;
      auto zero_dataset = eval::BuildEvalDataset(zero_spec);
      bench::CheckOk(zero_dataset.status(), "zero-oov dataset");
      auto hashed = eval::EvaluateMatcher(bench::LeapmeFactory({}, "LEAPME"),
                                          *eval_dataset, eval_options);
      auto zeroed = eval::EvaluateMatcher(bench::LeapmeFactory({}, "LEAPME"),
                                          *zero_dataset, eval_options);
      bench::CheckOk(hashed.status(), "hashed oov");
      bench::CheckOk(zeroed.status(), "zero oov");
      ablations.AddResult("OOV policy", spec.name, "hashed vectors",
                          hashed->mean);
      ablations.AddResult("OOV policy", spec.name, "zero vector (paper)",
                          zeroed->mean);
    }

    // Signed vs absolute property-vector difference.
    {
      auto signed_factory = [](const embedding::EmbeddingModel& model)
          -> std::unique_ptr<baselines::PairMatcher> {
        core::LeapmeOptions options;
        options.pair_features.absolute_difference = false;
        return std::make_unique<eval::LeapmeAdapter>(&model, options,
                                                     "signed diff");
      };
      auto absolute = eval::EvaluateMatcher(
          bench::LeapmeFactory({}, "LEAPME"), *eval_dataset, eval_options);
      auto signed_result =
          eval::EvaluateMatcher(signed_factory, *eval_dataset, eval_options);
      bench::CheckOk(absolute.status(), "absolute diff");
      bench::CheckOk(signed_result.status(), "signed diff");
      ablations.AddResult("Pair difference", spec.name, "absolute |v1-v2|",
                          absolute->mean);
      ablations.AddResult("Pair difference", spec.name, "signed v1-v2",
                          signed_result->mean);
    }

    // Classifier ablation: the paper's dense NN vs classic learners on
    // the same standardized LEAPME feature vectors (motivates §IV-C).
    {
      auto nn_result = eval::EvaluateMatcher(
          bench::LeapmeFactory({}, "LEAPME"), *eval_dataset, eval_options);
      bench::CheckOk(nn_result.status(), "nn classifier");
      ablations.AddResult("Classifier on LEAPME features", spec.name,
                          "neural net (paper)", nn_result->mean);
      ml::LogisticRegression logreg;
      ablations.AddResult("Classifier on LEAPME features", spec.name,
                          "logistic regression",
                          EvaluateClassicLearner(*eval_dataset, logreg, 7));
      ml::DecisionTree cart;
      ablations.AddResult("Classifier on LEAPME features", spec.name,
                          "decision tree",
                          EvaluateClassicLearner(*eval_dataset, cart, 7));
    }
    std::fprintf(stderr, "[ablation] %s done\n", spec.name.c_str());
  }

  std::printf("Feature-kind grid (Table II columns, 80%% training)\n\n%s\n",
              grid.Render().c_str());
  std::printf("Design-choice ablations\n\n%s\n", ablations.Render().c_str());
  std::printf(
      "expected shape (paper §V-C): embeddings-only beats non-embeddings\n"
      "within each origin; names beat instances; both >= names. The NN\n"
      "matches or beats the linear learner on the wide embedding-diff\n"
      "features.\n");

  bench::JsonReport report("feature_ablation");
  report.RawMetric("grid", grid.RenderJsonRows());
  report.RawMetric("ablations", ablations.RenderJsonRows());
  bench::WriteJsonReport(report);
  return 0;
}
