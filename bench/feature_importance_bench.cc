// Permutation feature importance (a quantitative companion to the paper's
// §V-A feature-kind analysis): how much test F1 drops when each Table I
// feature group is shuffled across test pairs of the trained classifier.
//
// Environment knobs: LEAPME_SCALE.

#include <cstdio>

#include "bench/bench_util.h"
#include "eval/importance.h"

int main() {
  const auto scale = leapme::bench::ScaleFromEnv();
  std::printf("Permutation importance of the Table I feature groups\n\n");
  std::string rows = "[";
  for (const auto& spec : leapme::eval::DefaultDatasetSpecs(scale)) {
    auto eval_dataset = leapme::eval::BuildEvalDataset(spec);
    leapme::bench::CheckOk(eval_dataset.status(), "BuildEvalDataset");
    auto importances = leapme::eval::PermutationImportance(*eval_dataset);
    leapme::bench::CheckOk(importances.status(), "PermutationImportance");
    std::printf("%s (baseline F1 %.2f):\n", spec.name.c_str(),
                importances->front().baseline_f1);
    for (const auto& importance : *importances) {
      std::printf("  %-24s (%3zu cols)  F1 drop %+.3f  (-> %.2f)\n",
                  importance.group.c_str(), importance.columns,
                  importance.f1_drop, importance.permuted_f1);
      rows += leapme::StrFormat(
          "%s{\"dataset\":\"%s\",\"group\":\"%s\",\"columns\":%zu,"
          "\"f1_drop\":%.4f}",
          rows.size() > 1 ? "," : "", spec.name.c_str(),
          importance.group.c_str(), importance.columns,
          importance.f1_drop);
    }
  }
  rows.push_back(']');
  std::printf(
      "\nexpected shape (paper §V-C): the name-embedding block carries the\n"
      "most weight, followed by value embeddings and name string\n"
      "distances; the format meta-features contribute least.\n");

  leapme::bench::JsonReport report("feature_importance");
  report.RawMetric("rows", rows);
  leapme::bench::WriteJsonReport(report);
  return 0;
}
